"""Long-running bulk flows — the backbone population of Figs 2, 8, 9.

Flows start with a small random jitter (synchronized starts would
produce artificial phase effects) and carry a per-flow access delay so
the population has variable RTTs, as in the paper's validation setup.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.topology import Dumbbell
from repro.tcp.flow import TcpFlow


def spawn_bulk_flows(
    dumbbell: Dumbbell,
    n_flows: int,
    start_window: float = 5.0,
    extra_rtt_max: float = 0.1,
    size_segments: Optional[int] = None,
    first_flow_id: int = 0,
    rng_name: str = "bulk-starts",
    **flow_kwargs,
) -> List[TcpFlow]:
    """Create *n_flows* flows on *dumbbell*.

    Parameters
    ----------
    start_window:
        Starts are uniform in ``[0, start_window)``.
    extra_rtt_max:
        Per-flow access RTT uniform in ``[0, extra_rtt_max)``.
    size_segments:
        ``None`` for long-running flows (the default), or a length.
    flow_kwargs:
        Forwarded to :class:`~repro.tcp.flow.TcpFlow` (e.g. ``sack=True``,
        ``max_cwnd=6``).
    """
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    rng = dumbbell.sim.rng.stream(rng_name)
    flows = []
    for i in range(n_flows):
        flows.append(
            TcpFlow(
                dumbbell,
                first_flow_id + i,
                size_segments=size_segments,
                start_time=rng.uniform(0.0, start_window),
                extra_rtt=rng.uniform(0.0, extra_rtt_max),
                **flow_kwargs,
            )
        )
    return flows
