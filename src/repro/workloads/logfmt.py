"""Reading and writing access logs in the Squid native format.

The paper's Fig 1/Fig 12 workloads come from Squid proxy logs.  This
module lets the replay machinery consume *real* logs when available —
the synthetic generator (:mod:`repro.workloads.traces`) is the offline
substitute, and round-trips through this format so generated traces can
be inspected with standard tools.

Squid native access.log line (the fields this reader uses are marked):

    time.ms   elapsed  client  code/status  bytes  method  URL  rfc931  peer  type
    ^^^^^^^            ^^^^^^               ^^^^^

- ``time.ms``: request completion time, Unix epoch seconds with ms;
- ``client``: client IP (mapped to a dense client id);
- ``bytes``: object size delivered.

Cache hits (``TCP_HIT``/``TCP_MEM_HIT``...) never crossed the access
link, so the reader skips them by default — the paper likewise ignores
cached objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, TextIO

from repro.workloads.traces import SyntheticTrace, TraceRequest

#: Squid result codes that did not consume access-link bandwidth.
CACHE_HIT_CODES = ("TCP_HIT", "TCP_MEM_HIT", "TCP_IMS_HIT", "TCP_NEGATIVE_HIT")


class LogParseError(ValueError):
    """A malformed access-log line."""


def parse_line(line: str) -> Optional[tuple]:
    """Parse one Squid line into ``(time, client_key, size, code)``.

    Returns None for blank/comment lines; raises :class:`LogParseError`
    for structurally broken ones.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.split()
    if len(fields) < 7:
        raise LogParseError(f"expected >= 7 fields, got {len(fields)}: {line!r}")
    try:
        time = float(fields[0])
        size = int(fields[4])
    except ValueError as exc:
        raise LogParseError(f"bad numeric field in {line!r}") from exc
    client_key = fields[2]
    code = fields[3].split("/")[0]
    return time, client_key, size, code


def read_trace(
    lines: Iterable[str],
    skip_cache_hits: bool = True,
    min_bytes: int = 1,
) -> SyntheticTrace:
    """Build a trace from Squid log *lines*.

    Times are rebased so the first request happens at t=0; client IPs
    are mapped to dense integer ids in order of first appearance.
    """
    parsed: List[tuple] = []
    for line in lines:
        record = parse_line(line)
        if record is None:
            continue
        time, client_key, size, code = record
        if skip_cache_hits and code in CACHE_HIT_CODES:
            continue
        if size < min_bytes:
            continue
        parsed.append((time, client_key, size))
    if not parsed:
        return SyntheticTrace(requests=[], duration=0.0, n_clients=0)
    parsed.sort(key=lambda r: r[0])
    base_time = parsed[0][0]
    client_ids: Dict[str, int] = {}
    requests = []
    for time, client_key, size in parsed:
        client_id = client_ids.setdefault(client_key, len(client_ids))
        requests.append(
            TraceRequest(time=time - base_time, client_id=client_id, size_bytes=size)
        )
    duration = requests[-1].time if requests else 0.0
    return SyntheticTrace(
        requests=requests, duration=duration, n_clients=len(client_ids)
    )


def read_trace_file(path: str, **kwargs) -> SyntheticTrace:
    """Read a Squid access.log file from *path*."""
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        return read_trace(handle, **kwargs)


def write_trace(trace: SyntheticTrace, handle: TextIO, base_time: float = 0.0) -> int:
    """Emit *trace* in Squid native format.  Returns lines written.

    Clients are rendered as ``10.0.x.y`` addresses; every entry is a
    ``TCP_MISS/200 GET`` since synthetic traces model uncached fetches.
    """
    written = 0
    for request in trace.requests:
        client = f"10.0.{request.client_id // 256}.{request.client_id % 256}"
        handle.write(
            f"{base_time + request.time:.3f}    250 {client} "
            f"TCP_MISS/200 {request.size_bytes} GET "
            f"http://origin.example/obj{written} - DIRECT/origin.example text/html\n"
        )
        written += 1
    return written


def write_trace_file(trace: SyntheticTrace, path: str, **kwargs) -> int:
    """Write *trace* to *path* in Squid native format."""
    with open(path, "w", encoding="utf-8") as handle:
        return write_trace(trace, handle, **kwargs)
