"""Short flows over a long-flow background (Fig 10).

The paper introduces 32 short flows of variable length (1-80 packets)
over 50 long-running flows on a 1 Mbps bottleneck and plots download
time against flow length.  Under TAQ the relationship is roughly linear
(the NewFlow queue shields the short flows); under DropTail it is a
scatter.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.net.topology import Dumbbell
from repro.tcp.flow import TcpFlow


def spawn_short_flows(
    dumbbell: Dumbbell,
    lengths_segments: Sequence[int],
    start_time: float,
    spacing: float = 1.0,
    first_flow_id: int = 10_000,
    **flow_kwargs,
) -> List[TcpFlow]:
    """Inject one short flow per entry of *lengths_segments*.

    Flows start ``spacing`` seconds apart beginning at *start_time*, so
    they do not arrive as a synchronized burst.
    """
    if any(length < 1 for length in lengths_segments):
        raise ValueError("flow lengths must be >= 1 segment")
    flows = []
    for i, length in enumerate(lengths_segments):
        flows.append(
            TcpFlow(
                dumbbell,
                first_flow_id + i,
                size_segments=int(length),
                start_time=start_time + i * spacing,
                **flow_kwargs,
            )
        )
    return flows
