"""Synthetic proxy access log, calibrated to the paper's Fig 1 setting.

The paper analyzes a 2-hour window of a university Squid proxy log:
a 2 Mbps access link, 221 unique client IPs, 1.5 GB downloaded, object
sizes from 100 B to ~100 MB with the mass in the web-page range.  The
real log is unavailable, so :func:`generate_trace` synthesizes one with
the same aggregates (see DESIGN.md, substitutions):

- object sizes are log-normal (median ~8 KB, sigma ~2.2 natural-log
  units), clipped to ``[100 B, max_object_bytes]`` — this matches the
  classic heavy-tailed web-object mix and spans Fig 1's x-axis;
- request arrivals are Poisson per client with exponential think times;
- each client is a flow pool issuing up to ``connections`` parallel
  requests.

The replay engine maps the trace onto :class:`~repro.workloads.web.WebUser`
sessions, so the same trace drives Fig 1 (droptail download-time
scatter) and Fig 12 (TAQ-with-admission CDFs).
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.topology import Dumbbell
from repro.workloads.web import WebUser


@dataclass(frozen=True)
class TraceRequest:
    """One logged object request."""

    time: float
    client_id: int
    size_bytes: int


@dataclass
class SyntheticTrace:
    """A generated access log."""

    requests: List[TraceRequest]
    duration: float
    n_clients: int

    @property
    def total_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests)

    def by_client(self) -> Dict[int, List[TraceRequest]]:
        grouped: Dict[int, List[TraceRequest]] = {}
        for request in self.requests:
            grouped.setdefault(request.client_id, []).append(request)
        return grouped


def sample_object_size(
    rng: random.Random,
    median_bytes: float = 8_000.0,
    sigma: float = 2.2,
    min_bytes: int = 100,
    max_bytes: int = 2_000_000,
) -> int:
    """Heavy-tailed (log-normal) web object size.

    ``max_bytes`` defaults to 2 MB rather than the trace's 100 MB tail:
    simulating multi-minute transfers adds wall-clock cost without
    changing the regime dynamics the figure demonstrates (the paper's
    own spread stabilizes past ~1 MB).
    """
    size = rng.lognormvariate(math.log(median_bytes), sigma)
    return int(min(max_bytes, max(min_bytes, size)))


def generate_trace(
    seed: int = 0,
    n_clients: int = 40,
    duration: float = 300.0,
    requests_per_client_per_sec: float = 0.05,
    median_bytes: float = 8_000.0,
    sigma: float = 2.2,
    max_object_bytes: int = 2_000_000,
) -> SyntheticTrace:
    """Synthesize an access log (see module docstring for calibration).

    Defaults are scaled down from the paper's 221 clients / 2 hours to
    keep simulations laptop-fast; the *rates* (requests per client, size
    mix) follow the published aggregates.
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    rng = random.Random(seed)
    requests: List[TraceRequest] = []
    for client in range(n_clients):
        t = rng.expovariate(requests_per_client_per_sec)
        while t < duration:
            requests.append(
                TraceRequest(
                    time=t,
                    client_id=client,
                    size_bytes=sample_object_size(
                        rng, median_bytes, sigma, max_bytes=max_object_bytes
                    ),
                )
            )
            t += rng.expovariate(requests_per_client_per_sec)
    requests.sort(key=lambda r: r.time)
    return SyntheticTrace(requests=requests, duration=duration, n_clients=n_clients)


def replay_trace(
    dumbbell: Dumbbell,
    trace: SyntheticTrace,
    connections: int = 4,
    first_flow_id: int = 0,
    max_objects_per_client: Optional[int] = None,
    **user_kwargs,
) -> List[WebUser]:
    """Replay *trace* as one :class:`WebUser` per client.

    Per §5.5, objects are requested as soon as a connection frees up
    rather than at the logged instants (requests depend on previous
    responses); the logged first-request time sets the session start.
    """
    flow_ids = itertools.count(first_flow_id)
    users = []
    for client_id, client_requests in sorted(trace.by_client().items()):
        sizes = [r.size_bytes for r in client_requests]
        if max_objects_per_client is not None:
            sizes = sizes[:max_objects_per_client]
        users.append(
            WebUser(
                dumbbell,
                client_id,
                sizes,
                flow_ids,
                connections=connections,
                start_time=client_requests[0].time,
                **user_kwargs,
            )
        )
    return users
