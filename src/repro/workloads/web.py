"""Web-session users: pools of parallel connections draining objects.

A :class:`WebUser` models one browser: a *flow pool* (§4.3) of up to
``connections`` simultaneous TCP connections fetching a queue of
objects as fast as possible ("request objects as soon as possible
rather than the logged request time", §5.5).  Every connection carries
the user's ``pool_id``, which is what TAQ's admission controller keys
on; a refused SYN is simply retried by TCP, reproducing the paper's
retry-until-admitted clients, and the wait shows up in the object's
download time.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import Deque, Iterable, List, Sequence

from repro.metrics.downloads import DownloadSample
from repro.net.topology import Dumbbell
from repro.tcp.flow import TcpFlow


class WebUser:
    """One browser session: a pool of connections and an object queue.

    Parameters
    ----------
    dumbbell:
        Topology to fetch across.
    user_id:
        Doubles as the flow pool id.
    object_sizes_bytes:
        Objects to fetch, in bytes; fetched in order, up to
        ``connections`` at a time.
    connections:
        Pool size (the paper uses 4).
    flow_ids:
        Shared iterator handing out globally unique flow ids.
    start_time:
        Session start.
    think_time:
        Pause between finishing one object and requesting the next on
        the freed connection.
    wait_feedback:
        Optional :class:`~repro.core.admission.AdmissionController` to
        consult before connecting (§4.3's visible wait queue: a
        RuralCafe-style proxy telling the browser *when* to come back).
        When the controller promises a wait, the user sleeps until the
        promised time instead of blind-retrying SYNs.
    """

    def __init__(
        self,
        dumbbell: Dumbbell,
        user_id: int,
        object_sizes_bytes: Iterable[int],
        flow_ids: Iterable[int],
        connections: int = 4,
        start_time: float = 0.0,
        think_time: float = 0.0,
        extra_rtt: float = 0.0,
        wait_feedback=None,
        **flow_kwargs,
    ) -> None:
        if connections < 1:
            raise ValueError("connections must be >= 1")
        self.dumbbell = dumbbell
        self.user_id = user_id
        self.connections = connections
        self.think_time = think_time
        self.extra_rtt = extra_rtt
        self.start_time = start_time
        self.flow_kwargs = flow_kwargs
        self._flow_ids = iter(flow_ids)
        self.wait_feedback = wait_feedback
        self.waits_observed = 0
        self.pending: Deque[int] = deque(int(s) for s in object_sizes_bytes)
        self.flows: List[TcpFlow] = []
        self.samples: List[DownloadSample] = []
        self._in_flight = 0
        dumbbell.sim.schedule_at(start_time, self._fill_pool)

    # ------------------------------------------------------------------
    def _fill_pool(self) -> None:
        if self.wait_feedback is not None and self.pending and self._in_flight == 0:
            # Request admission first (the paper's proxy model: ask,
            # get told the expected wait, come back then) — instead of
            # hammering SYNs at a closed gate.
            now = self.dumbbell.sim.now
            if not self.wait_feedback.admits(self.user_id, now):
                promised = max(
                    0.1, self.wait_feedback.expected_wait(self.user_id, now)
                )
                self.waits_observed += 1
                self.dumbbell.sim.schedule(promised + 0.01, self._fill_pool)
                return
        while self._in_flight < self.connections and self.pending:
            self._launch(self.pending.popleft())

    def _launch(self, size_bytes: int) -> None:
        mss = self.dumbbell.pkt_size
        segments = max(1, math.ceil(size_bytes / mss))
        flow = TcpFlow(
            self.dumbbell,
            next(self._flow_ids),
            size_segments=segments,
            start_time=self.dumbbell.sim.now,
            extra_rtt=self.extra_rtt,
            pool_id=self.user_id,
            record_deliveries=True,
            **self.flow_kwargs,
        )
        flow.on_complete(lambda f, now, size=size_bytes: self._object_done(f, now, size))
        self.flows.append(flow)
        self._in_flight += 1

    def _object_done(self, flow: TcpFlow, now: float, size_bytes: int) -> None:
        self._in_flight -= 1
        assert flow.download_time is not None
        self.samples.append(DownloadSample(size_bytes, flow.download_time))
        if self.pending:
            self.dumbbell.sim.schedule(self.think_time, self._fill_pool)

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self.pending and self._in_flight == 0

    def delivery_times(self) -> List[float]:
        """Merged delivery timestamps across the pool (hang metrics)."""
        times: List[float] = []
        for flow in self.flows:
            times.extend(t for t, _ in flow.delivery_log)
        return sorted(times)


def spawn_web_users(
    dumbbell: Dumbbell,
    n_users: int,
    objects_per_user: int,
    size_bytes: int = 10_000,
    connections: int = 4,
    start_window: float = 5.0,
    rng_name: str = "web-starts",
    first_flow_id: int = 0,
    size_sampler=None,
    **user_kwargs,
) -> List[WebUser]:
    """Create *n_users* sessions with homogeneous or sampled objects.

    ``size_sampler(rng) -> bytes`` overrides the fixed *size_bytes*.
    """
    if n_users < 1:
        raise ValueError("n_users must be >= 1")
    rng = dumbbell.sim.rng.stream(rng_name)
    flow_ids = itertools.count(first_flow_id)
    users = []
    for user_id in range(n_users):
        if size_sampler is not None:
            sizes: Sequence[int] = [size_sampler(rng) for _ in range(objects_per_user)]
        else:
            sizes = [size_bytes] * objects_per_user
        users.append(
            WebUser(
                dumbbell,
                user_id,
                sizes,
                flow_ids,
                connections=connections,
                start_time=rng.uniform(0.0, start_window),
                extra_rtt=rng.uniform(0.0, 0.05),
                **user_kwargs,
            )
        )
    return users
