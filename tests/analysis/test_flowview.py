"""Tests for per-flow trace analysis (the §2.3 pcap census)."""

import pytest

from repro.analysis import (
    bandwidth_capture,
    build_timelines,
    shut_down_fraction,
    silence_periods,
    slice_census,
)
from repro.analysis.trace import TraceRecord


def record(time, flow, retransmit=False):
    return TraceRecord(time, flow, "data", 0, 500, retransmit)


def test_build_timelines_groups_and_sorts():
    records = [record(2.0, 1), record(1.0, 1), record(0.5, 2, retransmit=True)]
    timelines = build_timelines(records)
    assert timelines[1].times == [1.0, 2.0]
    assert timelines[1].total_bytes == 1000
    assert timelines[2].retransmissions == 1


def test_silence_periods():
    timelines = build_timelines(
        [record(t, 1) for t in (0.0, 0.1, 5.0, 5.1, 20.0)]
    )
    gaps = silence_periods(timelines[1], threshold=2.0)
    assert gaps == [(0.1, 5.0), (5.1, 20.0)]


def test_shut_down_fraction_counts_only_alive_flows():
    timelines = build_timelines(
        # Flow 1 active in the slice; flow 2 alive but silent inside it;
        # flow 3 finished long before the slice (not counted).
        [record(12.0, 1), record(5.0, 2), record(30.0, 2), record(1.0, 3)]
    )
    assert shut_down_fraction(timelines, 10.0, 20.0) == pytest.approx(0.5)


def test_shut_down_fraction_empty():
    assert shut_down_fraction({}, 0.0, 10.0) == 0.0


def test_bandwidth_capture_top_heavy():
    records = [record(1.0 + 0.01 * i, 1) for i in range(80)]
    records += [record(1.0, 2), record(1.5, 3)]
    timelines = build_timelines(records)
    # Top 40% of 3 flows = 1 flow = flow 1 with 80/82 of the packets.
    share = bandwidth_capture(timelines, 0.0, 10.0, top_fraction=0.4)
    assert share == pytest.approx(80 / 82)


def test_slice_census_rows():
    records = [record(t, 1) for t in (1.0, 11.0, 21.0)]
    records += [record(1.0, 2), record(25.0, 2)]  # silent in middle slice
    timelines = build_timelines(records)
    rows = slice_census(timelines, 10.0, 0.0, 30.0)
    assert len(rows) == 3
    starts = [r[0] for r in rows]
    assert starts == [0.0, 10.0, 20.0]
    # Middle slice: flow 2 alive but silent -> 50% shut down.
    assert rows[1][1] == pytest.approx(0.5)


def test_paper_2_3_census_from_live_simulation():
    """End to end: the §2.3 claim measured from an actual trace."""
    from repro.analysis import PacketTraceRecorder
    from repro.experiments.runner import build_dumbbell
    from repro.workloads import spawn_bulk_flows

    bench = build_dumbbell("droptail", 600_000, rtt=0.2, seed=1)
    recorder = PacketTraceRecorder()
    bench.bell.forward.add_delivery_tap(recorder.observe)
    spawn_bulk_flows(bench.bell, 120, start_window=5.0, extra_rtt_max=0.1)
    bench.sim.run(until=90.0)
    timelines = build_timelines(recorder.records)
    rows = slice_census(timelines, 20.0, 20.0, 80.0)
    shut_down = [row[1] for row in rows]
    capture = [row[2] for row in rows]
    # A visible fraction of flows is fully shut down per 20 s slice, and
    # the top 40% of flows take the bulk of the bytes (paper: ~30% and
    # >80% respectively at its scale).
    assert max(shut_down) > 0.05
    assert max(capture) > 0.6
