"""Tests for the packet trace recorder and persistence."""

import io

from repro.analysis import PacketTraceRecorder, TraceRecord, load_trace, save_trace
from repro.net.packet import ACK, DATA, Packet


def data(flow=1, seq=0, retransmit=False):
    return Packet(flow, DATA, seq=seq, size=500, is_retransmit=retransmit)


def test_records_data_packets_by_default():
    recorder = PacketTraceRecorder()
    recorder.observe(data(seq=0), 1.0)
    recorder.observe(Packet(1, ACK, ack_seq=1), 1.1)
    recorder.observe(data(seq=1, retransmit=True), 2.0)
    assert len(recorder) == 2
    assert recorder.records[0] == TraceRecord(1.0, 1, DATA, 0, 500, False)
    assert recorder.records[1].retransmit


def test_kind_filter_and_predicate():
    recorder = PacketTraceRecorder(
        kinds=(DATA, ACK), predicate=lambda p, now: p.flow_id == 2
    )
    recorder.observe(data(flow=1), 0.0)
    recorder.observe(data(flow=2), 0.0)
    recorder.observe(Packet(2, ACK, ack_seq=1), 0.1)
    assert len(recorder) == 2
    assert all(r.flow_id == 2 for r in recorder.records)


def test_limit_truncates():
    recorder = PacketTraceRecorder(limit=3)
    for i in range(5):
        recorder.observe(data(seq=i), float(i))
    assert len(recorder) == 3
    assert recorder.truncated


def test_flows_listing():
    recorder = PacketTraceRecorder()
    for flow in (3, 1, 3, 2):
        recorder.observe(data(flow=flow), 0.0)
    assert recorder.flows() == [1, 2, 3]


def test_save_load_round_trip():
    recorder = PacketTraceRecorder()
    for i in range(10):
        recorder.observe(data(seq=i, retransmit=i % 3 == 0), i * 0.1)
    buffer = io.StringIO()
    written = save_trace(recorder.records, buffer)
    assert written == 10
    buffer.seek(0)
    loaded = load_trace(buffer)
    assert loaded == recorder.records


def test_load_skips_blank_lines():
    buffer = io.StringIO(
        '{"time":1.0,"flow_id":1,"kind":"data","seq":0,"size":500,"retransmit":false}\n'
        "\n"
    )
    assert len(load_trace(buffer)) == 1


def test_observe_drop_marks_record_dropped():
    recorder = PacketTraceRecorder()
    recorder.observe(data(seq=0), 1.0)
    recorder.observe_drop(data(seq=1), 2.0)
    assert [r.dropped for r in recorder.records] == [False, True]


def test_dropped_field_round_trips():
    recorder = PacketTraceRecorder()
    recorder.observe(data(seq=0), 1.0)
    recorder.observe_drop(data(seq=1), 2.0)
    buffer = io.StringIO()
    save_trace(recorder.records, buffer)
    buffer.seek(0)
    assert load_trace(buffer) == recorder.records


def test_load_pre_drop_tap_trace_defaults_dropped_false():
    # JSONL written before the dropped field existed must still load.
    buffer = io.StringIO(
        '{"time":1.0,"flow_id":1,"kind":"data","seq":0,"size":500,"retransmit":false}\n'
    )
    records = load_trace(buffer)
    assert records == [TraceRecord(1.0, 1, DATA, 0, 500, False)]
    assert records[0].dropped is False


def test_drop_tap_on_queue():
    from repro.queues import DropTailQueue

    queue = DropTailQueue(2)
    recorder = PacketTraceRecorder()
    queue.add_drop_observer(recorder.observe_drop)
    for seq in range(4):
        queue.enqueue(data(seq=seq), 0.1 * (seq + 1))
    assert len(recorder) == 2
    assert all(r.dropped for r in recorder.records)
    assert [r.seq for r in recorder.records] == [2, 3]


def test_live_tap_on_dumbbell():
    from repro.net.topology import Dumbbell
    from repro.sim.simulator import Simulator
    from repro.tcp.flow import TcpFlow

    sim = Simulator(seed=2)
    bell = Dumbbell(sim, 1_000_000, 0.1)
    recorder = PacketTraceRecorder()
    bell.forward.add_tap(recorder.observe)
    TcpFlow(bell, 1, size_segments=20)
    sim.run(until=30.0)
    assert len(recorder) >= 20
    times = [r.time for r in recorder.records]
    assert times == sorted(times)
