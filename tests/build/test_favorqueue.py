"""FavorQueue semantics: favoritism, push-out, bounded state."""

from repro.net.packet import Packet
from repro.queues.favorqueue import FavorQueue


def pkt(flow_id, seq=0, size=500):
    return Packet(flow_id, "data", seq=seq, size=size)


def test_young_flow_dequeued_before_backlog():
    queue = FavorQueue(capacity_pkts=10, favor_packets=2)
    for seq in range(4):
        assert queue.enqueue(pkt(1, seq), now=0.0)
    assert queue.enqueue(pkt(2, 0), now=0.0)
    # Flow 1 outgrew the favored region after 2 packets; flow 2 is young
    # and jumps the line.
    first = queue.dequeue(now=0.0)
    assert first.flow_id == 1 and first.seq == 0  # favored admissions of 1
    second = queue.dequeue(now=0.0)
    assert second.flow_id == 1 and second.seq == 1
    third = queue.dequeue(now=0.0)
    assert third.flow_id == 2


def test_full_queue_pushes_out_old_flow_for_newcomer():
    queue = FavorQueue(capacity_pkts=4, favor_packets=1)
    # Fill with packets of an old flow (second packet onward is normal).
    for seq in range(4):
        queue.enqueue(pkt(7, seq), now=0.0)
    assert len(queue) == 4
    assert queue.enqueue(pkt(8, 0), now=1.0)  # young flow admitted
    assert len(queue) == 4
    assert queue.dropped == 1  # the pushed-out tail packet


def test_old_flow_dropped_at_capacity():
    queue = FavorQueue(capacity_pkts=2, favor_packets=1)
    queue.enqueue(pkt(1, 0), now=0.0)
    queue.enqueue(pkt(1, 1), now=0.0)
    assert not queue.enqueue(pkt(1, 2), now=0.0)
    assert queue.dropped == 1


def test_state_horizon_bounds_flow_counters():
    queue = FavorQueue(capacity_pkts=1000, favor_packets=1, state_horizon=3)
    for flow_id in range(10):
        queue.enqueue(pkt(flow_id), now=0.0)
    assert len(queue._seen) <= 3


def test_counts_favored_admissions():
    queue = FavorQueue(capacity_pkts=10, favor_packets=2)
    for seq in range(3):
        queue.enqueue(pkt(1, seq), now=0.0)
    assert queue.favored_admissions == 2
