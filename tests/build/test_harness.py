"""build_simulation wiring: construction order side effects, taps, groups."""

import pytest

from repro.build import (
    QUEUES,
    QueueSpec,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    WorkloadSpec,
    build_queue,
    build_simulation,
    manifest_payloads,
)
from repro.core import TAQQueue
from repro.sim.simulator import Simulator


def scenario(**overrides):
    fields = dict(
        name="harness-test",
        seed=3,
        duration=20.0,
        topology=TopologySpec(capacity_bps=600_000.0, rtt=0.2),
        queue=QueueSpec(kind="taq"),
        workloads=[WorkloadSpec("bulk", dict(n_flows=4))],
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


def test_build_queue_matches_registry():
    sim = Simulator(seed=1)
    queue = build_queue("taq", sim, 600_000.0, 0.2)
    assert isinstance(queue, TAQQueue)


def test_build_queue_unknown_kind():
    sim = Simulator(seed=1)
    with pytest.raises(SpecError, match="registered kinds"):
        build_queue("fifo", sim, 600_000.0, 0.2)


def test_taq_reverse_tap_installed_by_default():
    built = build_simulation(scenario())
    assert built.queue.observe_reverse in built.topology.reverse._taps


def test_reverse_tap_disabled_leaves_one_way_mode():
    built = build_simulation(scenario(queue=QueueSpec(kind="taq", reverse_tap=False)))
    assert built.queue.observe_reverse not in built.topology.reverse._taps


def test_delivery_link_is_forward_for_dumbbell():
    built = build_simulation(scenario())
    assert built.delivery_link is built.topology.forward


def test_delivery_link_is_underlay_for_overlay():
    built = build_simulation(
        scenario(
            topology=TopologySpec(
                capacity_bps=600_000.0,
                kind="overlay",
                rtt=0.2,
                params=dict(mode="overlay", underlay_loss=0.1),
            )
        )
    )
    assert built.delivery_link is built.topology.underlay


def test_workload_groups_preserve_order_and_flows():
    built = build_simulation(
        scenario(
            workloads=[
                WorkloadSpec("bulk", dict(n_flows=3)),
                WorkloadSpec("short", dict(lengths=[2, 5], start_time=5.0)),
            ]
        )
    )
    assert [g.kind for g in built.groups] == ["bulk", "short"]
    assert len(built.groups[0].flows) == 3
    assert len(built.groups[1].flows) == 2
    assert len(built.all_flows()) == 5


def test_second_workload_sees_flows_spawned_offset():
    built = build_simulation(
        scenario(
            workloads=[
                WorkloadSpec("bulk", dict(n_flows=3)),
                WorkloadSpec("bulk", dict(n_flows=2)),
            ]
        )
    )
    ids = [f.flow_id for f in built.all_flows()]
    assert ids == [0, 1, 2, 3, 4]


def test_run_defaults_to_spec_duration():
    built = build_simulation(scenario(duration=5.0))
    built.run()
    assert built.sim.now == pytest.approx(5.0, abs=1.0)


def test_manifest_payloads_mirror_canonical_document():
    spec = scenario()
    payloads = manifest_payloads(spec)
    assert payloads["scenario"] == spec.canonical()
    assert payloads["topology"] == spec.canonical()["topology"]
    assert payloads["qdisc"] == spec.canonical()["queue"]


def test_same_spec_builds_bit_identical_runs():
    spec = scenario(duration=10.0)
    results = []
    for _ in range(2):
        built = build_simulation(spec)
        built.run()
        results.append(
            (
                built.queue.loss_rate(),
                sum(f.sender.stats.timeouts for f in built.all_flows()),
                built.sim.processed,
            )
        )
    assert results[0] == results[1]


def test_registry_only_discipline_builds_end_to_end():
    # A kind registered by a plugin module (favorqueue ships as one)
    # works through the full harness without any edits elsewhere.
    assert "favorqueue" in QUEUES
    built = build_simulation(scenario(queue=QueueSpec(kind="favorqueue")))
    built.run(until=5.0)
    assert built.sim.processed > 0
