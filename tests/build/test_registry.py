"""Registry behaviour: registration, duplicates, unknown-kind errors."""

import pytest

from repro.build import (
    QUEUES,
    DuplicateKindError,
    Registry,
    SpecError,
    UnknownKindError,
)


def test_register_and_create():
    registry = Registry("widget")

    @registry.register("box")
    def build_box(ctx, size=1):
        return ("box", ctx, size)

    assert "box" in registry
    assert registry.kinds() == ["box"]
    assert registry.create("box", "ctx", size=3) == ("box", "ctx", 3)


def test_duplicate_registration_is_an_error():
    registry = Registry("widget")

    @registry.register("box")
    def build_box(ctx):
        return None

    with pytest.raises(DuplicateKindError, match="'box' is already registered"):

        @registry.register("box")
        def build_box_again(ctx):
            return None

    # The original builder survives the failed re-registration.
    assert registry.get("box") is build_box


def test_unknown_kind_lists_registered_kinds_and_suggests():
    registry = Registry("widget")

    @registry.register("droptail")
    def build(ctx):
        return None

    with pytest.raises(UnknownKindError) as excinfo:
        registry.get("droptale")
    message = str(excinfo.value)
    assert "unknown widget kind 'droptale'" in message
    assert "did you mean 'droptail'?" in message
    assert "registered kinds: droptail" in message


def test_unknown_kind_is_catchable_as_spec_error():
    registry = Registry("widget")
    with pytest.raises(SpecError):
        registry.get("anything")


def test_unregister_round_trip():
    registry = Registry("widget")

    @registry.register("tmp")
    def build(ctx):
        return None

    registry.unregister("tmp")
    assert "tmp" not in registry
    with pytest.raises(UnknownKindError):
        registry.unregister("tmp")


def test_accepted_params_enumerates_keywords():
    registry = Registry("widget")

    @registry.register("closed")
    def build_closed(ctx, alpha, beta=2):
        return None

    @registry.register("open")
    def build_open(ctx, gamma=1, **rest):
        return None

    assert registry.accepted_params("closed") == (["alpha", "beta"], False)
    assert registry.accepted_params("open") == (["gamma"], True)


def test_builtin_queue_kinds_present():
    for kind in ("droptail", "red", "sfq", "taq", "taq+ac", "favorqueue"):
        assert kind in QUEUES
