"""Strict spec loading: round trips, rejection messages, suggestions."""

import json

import pytest

from repro.build import ScenarioSpec, SpecError


def base_document(**overrides):
    document = {
        "name": "spec-test",
        "seed": 3,
        "duration": 30,
        "topology": {"type": "dumbbell", "capacity_bps": 600_000, "rtt": 0.2},
        "queue": {"kind": "taq", "buffer_rtts": 1.0, "reverse_tap": True},
        "workloads": [
            {"type": "bulk", "n_flows": 20, "start_window": 5.0},
            {"type": "short", "lengths": [2, 10], "start_time": 10.0},
        ],
        "metrics": {"slice_seconds": 20.0},
    }
    document.update(overrides)
    return document


def test_round_trip_is_identity():
    spec = ScenarioSpec.from_document(base_document())
    dumped = spec.to_document()
    again = ScenarioSpec.from_document(dumped)
    assert again == spec
    assert again.to_document() == dumped


def test_json_round_trip_is_identity():
    spec = ScenarioSpec.from_json(json.dumps(base_document()))
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_canonical_is_json_safe():
    spec = ScenarioSpec.from_document(base_document())
    json.dumps(spec.canonical())  # must not raise


def test_missing_capacity_is_a_spec_error_not_a_buffer_error():
    # Regression: the old runner passed topology.get("capacity_bps", 0)
    # into queue construction before validating, so a missing capacity
    # surfaced as "capacity_pkts must be >= 1" four layers down.
    document = base_document(topology={"type": "dumbbell", "rtt": 0.2})
    with pytest.raises(SpecError) as excinfo:
        ScenarioSpec.from_document(document)
    assert "missing 'capacity_bps' in topology" in str(excinfo.value)
    assert "capacity_pkts" not in str(excinfo.value)


def test_unknown_scenario_key_suggests_fix():
    with pytest.raises(SpecError) as excinfo:
        ScenarioSpec.from_document(base_document(durations=10))
    message = str(excinfo.value)
    assert "unknown key 'durations'" in message
    assert "did you mean 'duration'?" in message


def test_unknown_queue_param_suggests_fix():
    document = base_document(
        queue={"kind": "droptail", "buffer_rtt": 2.0}
    )
    with pytest.raises(SpecError) as excinfo:
        ScenarioSpec.from_document(document)
    assert "did you mean 'buffer_rtts'?" in str(excinfo.value)


def test_unknown_workload_kind_lists_registered_kinds():
    document = base_document(workloads=[{"type": "bulks", "n_flows": 2}])
    with pytest.raises(SpecError) as excinfo:
        ScenarioSpec.from_document(document)
    message = str(excinfo.value)
    assert "unknown workload kind 'bulks'" in message
    assert "did you mean 'bulk'?" in message
    assert "bulk" in message and "web" in message


def test_missing_required_workload_param_fails_up_front():
    document = base_document(workloads=[{"type": "bulk"}])
    with pytest.raises(SpecError, match="missing 'n_flows'"):
        ScenarioSpec.from_document(document)


def test_open_ended_builder_accepts_extra_params():
    # The bulk builder takes **flow_kwargs, so spec validation defers
    # unknown keys to the constructed component.
    document = base_document(
        workloads=[{"type": "bulk", "n_flows": 2, "sack": True}]
    )
    spec = ScenarioSpec.from_document(document)
    assert spec.workloads[0].params["sack"] is True


def test_non_integer_seed_rejected():
    with pytest.raises(SpecError, match="'seed'"):
        ScenarioSpec.from_document(base_document(seed=1.5))


def test_plugins_must_be_module_names():
    with pytest.raises(SpecError, match="plugins"):
        ScenarioSpec.from_document(base_document(plugins=[42]))


def test_unimportable_plugin_is_a_spec_error():
    with pytest.raises(SpecError):
        ScenarioSpec.from_document(
            base_document(plugins=["no.such.module.anywhere"])
        )
