"""Shared builders for the check-subsystem tests: tiny, fast scenarios."""

import pytest

from repro.build import ScenarioSpec


def make_document(**overrides):
    """A small dumbbell document (sub-second build, ~2k events)."""
    document = {
        "name": "check-test",
        "seed": 3,
        "duration": 6.0,
        "topology": {"type": "dumbbell", "capacity_bps": 400_000, "rtt": 0.1},
        "queue": {"kind": "droptail"},
        "workloads": [{"type": "bulk", "n_flows": 6}],
        "metrics": {"slice_seconds": 3.0},
    }
    document.update(overrides)
    return document


def make_spec(**overrides):
    return ScenarioSpec.from_document(make_document(**overrides))


@pytest.fixture
def document():
    return make_document()


@pytest.fixture
def spec():
    return make_spec()
