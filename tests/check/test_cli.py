"""End-to-end tests for the ``taq-check`` command line."""

import json

import pytest

from repro.check.cli import main
from tests.check.conftest import make_document


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(make_document()))
    return str(path)


@pytest.fixture
def faulty_file(tmp_path):
    document = make_document(
        queue={"kind": "droptail-blackhole", "every": 5},
        plugins=["repro.check.faults"],
    )
    path = tmp_path / "faulty.json"
    path.write_text(json.dumps(document))
    return str(path)


def test_run_clean_scenario_exits_zero(scenario_file, capsys):
    assert main(["run", scenario_file]) == 0
    out = capsys.readouterr().out
    assert "all invariants held" in out
    assert "events checked" in out


def test_run_faulty_scenario_exits_one_and_prints_violations(faulty_file, capsys):
    assert main(["run", faulty_file]) == 1
    out = capsys.readouterr().out
    assert "violation(s)" in out
    assert "[conservation]" in out


def test_run_invalid_document_exits_two(tmp_path, capsys):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"name": "broken"}))
    assert main(["run", str(path)]) == 2
    assert "scenario error" in capsys.readouterr().err


def test_run_missing_file_exits_two(tmp_path, capsys):
    assert main(["run", str(tmp_path / "nope.json")]) == 2


def test_fuzz_small_campaign_exits_zero(tmp_path, capsys):
    assert main([
        "fuzz", "--seed", "1", "--count", "3",
        "--out", str(tmp_path / "repros"),
    ]) == 0
    assert "fuzz: 3/3 cases clean (seed 1)" in capsys.readouterr().out


def test_diff_exits_zero_when_relations_hold(scenario_file, capsys):
    assert main(["diff", scenario_file]) == 0
    out = capsys.readouterr().out
    assert "all relations hold" in out
    assert "offered-load-identical" in out


def test_diff_jobs_exits_zero(scenario_file, capsys):
    assert main([
        "diff-jobs", scenario_file, "--jobs-a", "1", "--jobs-b", "2",
        "--points", "2",
    ]) == 0
    assert "jobs levels agree" in capsys.readouterr().out


def test_subcommand_is_required(capsys):
    with pytest.raises(SystemExit):
        main([])
