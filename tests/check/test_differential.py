"""Differential oracle tests: discipline arms and jobs arms."""

import pytest

from repro.build import build_simulation
from repro.check.differential import (
    compare_disciplines,
    compare_jobs,
    offered_load_signature,
    respec_queue,
    small_packet_regime,
)

from tests.check.conftest import make_spec

SMALL_PACKET = dict(
    topology={"type": "dumbbell", "capacity_bps": 100_000, "rtt": 0.2},
    workloads=[{"type": "bulk", "n_flows": 16}],
)


def test_respec_strips_kind_specific_parameters():
    spec = make_spec(queue={"kind": "taq+ac", "t_wait": 3.0, "buffer_rtts": 2.0})
    respecced = respec_queue(spec, "droptail")
    assert respecced.queue.kind == "droptail"
    assert respecced.queue.buffer_rtts == 2.0
    assert "t_wait" not in respecced.queue.params


def test_respec_forwards_caller_params():
    spec = make_spec()
    respecced = respec_queue(spec, "taq+ac", t_wait=3.0)
    assert respecced.queue.kind == "taq+ac"
    assert respecced.queue.params["t_wait"] == 3.0


def test_offered_load_signature_is_discipline_independent():
    spec = make_spec(workloads=[
        {"type": "bulk", "n_flows": 5},
        {"type": "web", "n_users": 2, "objects_per_user": 2,
         "object_bytes": 8_000, "connections": 2},
    ])
    signatures = [
        offered_load_signature(build_simulation(respec_queue(spec, kind)))
        for kind in ("droptail", "red", "sfq", "taq")
    ]
    assert all(sig == signatures[0] for sig in signatures)
    assert len(signatures[0]) == 5 + 2  # flows + users


def test_small_packet_regime_classification():
    assert small_packet_regime(make_spec(**SMALL_PACKET))
    roomy = make_spec(
        topology={"type": "dumbbell", "capacity_bps": 10_000_000, "rtt": 0.1},
        workloads=[{"type": "bulk", "n_flows": 2}],
    )
    assert not small_packet_regime(roomy)


def test_compare_disciplines_small_packet_all_relations_hold():
    report = compare_disciplines(make_spec(**SMALL_PACKET))
    names = [r.name for r in report.relations]
    assert "offered-load-identical" in names
    assert "goodput-under-capacity[droptail]" in names
    assert "goodput-under-capacity[taq]" in names
    assert "droptail-drops-gte-taq" in names  # regime gate engaged
    assert report.ok, report.to_document()
    assert report.violations == []


def test_drop_relation_gated_out_for_non_taq_candidate():
    report = compare_disciplines(make_spec(**SMALL_PACKET), candidate="red")
    assert "droptail-drops-gte-taq" not in [r.name for r in report.relations]
    assert report.ok


def test_drop_relation_gated_out_outside_small_packet_regime():
    roomy = make_spec(
        topology={"type": "dumbbell", "capacity_bps": 10_000_000, "rtt": 0.1},
        workloads=[{"type": "bulk", "n_flows": 2}],
    )
    report = compare_disciplines(roomy)
    assert "droptail-drops-gte-taq" not in [r.name for r in report.relations]


def test_drop_relation_forced_on_records_outcome():
    report = compare_disciplines(
        make_spec(**SMALL_PACKET), drop_relation=True
    )
    relation = next(r for r in report.relations if r.name == "droptail-drops-gte-taq")
    assert "dropped" in relation.detail


def test_report_failure_surface():
    report = compare_disciplines(make_spec(**SMALL_PACKET))
    report.check("synthetic", False, "injected failure")
    assert not report.ok
    assert [r.name for r in report.failures] == ["synthetic"]
    document = report.to_document()
    assert document["ok"] is False
    assert document["arms"] == ["droptail", "taq"]


@pytest.mark.parametrize("jobs_b", [2, 3])
def test_jobs_levels_are_bit_identical(jobs_b):
    report = compare_jobs(make_spec(), jobs_a=1, jobs_b=jobs_b, points=3)
    assert len(report.relations) == 3
    assert report.ok, report.to_document()
