"""The monitors must *catch* bugs, not just bless clean code.

Each fault in :mod:`repro.check.faults` models a classic accounting bug;
these tests are the subsystem's acceptance criterion: inject the bug,
assert the right monitor fires, and assert the fuzzer shrinks the
triggering scenario to a minimal standalone repro document.
"""

import json

from repro.check.fuzz import run_campaign, run_case, shrink
from tests.check.conftest import make_document


def faulty_document(kind, **params):
    queue = {"kind": kind}
    queue.update(params)
    return make_document(queue=queue, plugins=["repro.check.faults"])


def monitors_fired(violations):
    return {v.monitor for v in violations}


def test_blackhole_is_caught_by_conservation():
    violations = run_case(faulty_document("droptail-blackhole", every=5))
    assert "conservation" in monitors_fired(violations)
    first = next(v for v in violations if v.monitor == "conservation")
    assert "ledger drift" in first.message or "lost" in first.message


def test_overstuffed_is_caught_by_occupancy():
    violations = run_case(faulty_document("droptail-overstuffed", overshoot=4))
    assert "occupancy" in monitors_fired(violations)


def test_clean_droptail_control_has_no_violations():
    # Same scenario, non-faulty queue: the faults, not the load, trip
    # the monitors.
    assert run_case(make_document()) == []


def test_injected_bug_is_shrunk_to_minimal_repro(tmp_path):
    # The acceptance criterion end to end: a campaign over scenarios
    # that all carry the accounting bug must flag every case via the
    # conservation monitor and write a *minimal* shrunk repro — one
    # workload, one flow — that still reproduces standalone.
    def buggy_runner(document):
        variant = json.loads(json.dumps(document))
        variant["queue"] = {"kind": "droptail-blackhole", "every": 5}
        variant["plugins"] = ["repro.check.faults"]
        return run_case(variant)

    campaign = run_campaign(
        seed=5, count=1, out_dir=str(tmp_path), runner=buggy_runner
    )
    assert len(campaign.failures) == 1
    case = campaign.failures[0]
    assert case.violations[0].monitor == "conservation"
    assert case.repro_path is not None

    shrunk = json.loads(open(case.repro_path).read())
    # Greedy shrinking bottomed out: a single one-flow workload.
    assert len(shrunk["workloads"]) == 1
    assert shrunk["workloads"][0]["n_flows"] == 1
    assert shrunk["duration"] <= 20.0 / 2  # at least one duration halving

    # The shrunk document still fails for the same reason.
    assert "conservation" in monitors_fired(buggy_runner(shrunk))

    # And the violation sidecar names the same monitor.
    sidecar = json.loads(
        open(case.repro_path.replace(".json", ".violations.json")).read()
    )
    assert sidecar[0]["monitor"] == "conservation"


def test_shrunk_repro_reproduces_standalone():
    # A repro document that carries the fault via the plugins list must
    # fail when replayed through plain run_case — no test harness state,
    # exactly what `taq-check run repro.json` does.
    document = faulty_document("droptail-blackhole", every=5)
    shrunk = shrink(document, "conservation")
    assert shrunk["queue"]["kind"] == "droptail-blackhole"
    assert shrunk["plugins"] == ["repro.check.faults"]
    assert "conservation" in monitors_fired(run_case(shrunk))
    assert shrunk["workloads"][0]["n_flows"] == 1


def test_miscounting_ledger_drift_is_caught():
    # No packet is lost — only the enqueued counter drifts — so this
    # one exercises the queue-ledger side of the conservation check.
    violations = run_case(faulty_document("droptail-miscounting", every=4))
    assert "conservation" in monitors_fired(violations)
    first = next(v for v in violations if v.monitor == "conservation")
    assert "ledger drift" in first.message


def test_disarmed_fault_kind_is_harmless():
    violations = run_case(
        faulty_document("droptail-blackhole", every=10**9)  # never fires
    )
    assert violations == []  # the kind alone is harmless until it fires
