"""Fuzzer determinism, sampled-document validity, and shrinking."""

import json
import random

from repro.build import ScenarioSpec, build_simulation
from repro.check.fuzz import (
    PROBE_PARITY_MODULUS,
    CaseResult,
    _candidates,
    _probe_parity,
    run_campaign,
    run_case,
    sample_document,
    shrink,
    write_repro,
)
from repro.check.monitors import Violation


def test_sampled_documents_are_always_valid():
    for case_seed in range(40):
        rng = random.Random(case_seed)
        document = sample_document(rng, case_seed)
        spec = ScenarioSpec.from_document(document)  # raises on invalid
        assert spec.name == f"fuzz-{case_seed}"


def test_sampling_is_deterministic_per_seed():
    a = sample_document(random.Random(99), 99)
    b = sample_document(random.Random(99), 99)
    assert a == b
    c = sample_document(random.Random(100), 100)
    assert c != a


def test_sampling_covers_every_queue_kind():
    kinds = {
        sample_document(random.Random(seed), seed)["queue"]["kind"]
        for seed in range(60)
    }
    assert kinds == {"droptail", "red", "sfq", "taq", "taq+ac"}


def test_campaign_is_deterministic_independent_of_failures(tmp_path):
    # Two campaigns with the same seed must sample identical cases even
    # if one of them fails cases (failure handling must not consume
    # randomness from the master stream).  The failing arm crashes
    # (crashes skip the shrinker, so the runner sees exactly one
    # document per case in both arms).
    sampled = [[], []]
    fail_some = [False, True]

    for arm in range(2):
        def runner(document, arm=arm):
            sampled[arm].append(json.dumps(document, sort_keys=True))
            if fail_some[arm] and len(sampled[arm]) % 2 == 0:
                raise RuntimeError("injected")
            return []

        run_campaign(seed=17, count=6, out_dir=str(tmp_path), runner=runner)

    assert sampled[0] == sampled[1]


def test_candidates_only_shrink():
    rng = random.Random(7)
    document = sample_document(rng, 7)

    def weight(doc):
        flows = sum(
            w.get("n_flows", 0) + w.get("n_users", 0)
            + w.get("objects_per_user", 0) + w.get("connections", 0)
            + len(w.get("lengths", []))
            for w in doc["workloads"]
        )
        return (len(doc["workloads"]), flows, doc["duration"])

    for candidate in _candidates(document):
        assert weight(candidate) < weight(document)
        ScenarioSpec.from_document(candidate)  # still valid


def test_shrink_reaches_a_minimal_document():
    # Synthetic failure predicate: the "bug" fires while the scenario
    # still has at least 3 bulk flows.  The shrinker must descend to a
    # fixed point where no candidate still fails.
    def runner(document):
        bulk = sum(
            w.get("n_flows", 0) for w in document["workloads"]
            if w["type"] == "bulk"
        )
        if bulk >= 3:
            return [Violation("synthetic", f"{bulk} flows")]
        return []

    rng = random.Random(3)
    document = sample_document(rng, 3)
    document["workloads"][0]["n_flows"] = 48
    shrunk = shrink(document, "synthetic", runner=runner)
    assert runner(shrunk)  # still fails...
    # ...but no candidate of it does (greedy fixed point).
    assert not any(runner(c) for c in _candidates(shrunk))
    assert shrunk["workloads"][0]["n_flows"] <= 5  # 48 -> 24 -> 12 -> 6 -> 3


def test_shrink_requires_same_monitor():
    # A candidate that fails with a DIFFERENT monitor must not count as
    # a successful shrink.
    def runner(document):
        if document["workloads"][0].get("n_flows", 0) > 10:
            return [Violation("wanted", "big")]
        return [Violation("other", "small")]

    rng = random.Random(4)
    document = sample_document(rng, 4)
    document["workloads"] = [
        {"type": "bulk", "n_flows": 40, "start_window": 1.0}
    ]
    shrunk = shrink(document, "wanted", runner=runner)
    assert shrunk["workloads"][0]["n_flows"] > 10


def test_shrink_skips_crashing_candidates():
    calls = {"n": 0}

    def runner(document):
        calls["n"] += 1
        if document["duration"] < 10.0:
            raise RuntimeError("variant does not even build")
        return [Violation("synthetic", "still fails")]

    rng = random.Random(5)
    document = sample_document(rng, 5)
    document["duration"] = 16.0
    shrunk = shrink(document, "synthetic", runner=runner)
    assert shrunk["duration"] >= 10.0
    assert calls["n"] >= 1


def _fluid_document(seed):
    return {
        "name": f"fuzz-{seed}",
        "seed": seed,
        "duration": 8.0,
        "topology": {"type": "dumbbell", "capacity_bps": 600_000,
                     "rtt": 0.2, "pkt_size": 500},
        "queue": {"kind": "red", "buffer_rtts": 1.0},
        "workloads": [{"type": "bulk", "n_flows": 8}],
        "backend": {"kind": "fluid"},
    }


def test_fluid_case_with_parity_seed_runs_armed_twin_clean():
    # seed % PROBE_PARITY_MODULUS == 0 selects the parity arm; a healthy
    # integrator must come back with zero violations from it.
    seed = PROBE_PARITY_MODULUS * 3
    assert run_case(_fluid_document(seed)) == []


def test_probe_parity_detects_a_perturbed_run():
    # Sabotage the "unarmed" result and check the comparison actually
    # bites — guarding against a vacuously green parity check.
    spec = ScenarioSpec.from_document(_fluid_document(0))
    unarmed = build_simulation(spec)
    unarmed.run()
    assert _probe_parity(spec, unarmed) == []
    unarmed.result.delivered_pkts += 1.0
    violations = _probe_parity(spec, unarmed)
    assert len(violations) == 1
    assert violations[0].monitor == "fluid-probe-parity"
    assert "delivered" in violations[0].message


def test_sampler_reaches_parity_eligible_fluid_cases():
    # The campaign keys parity off the document seed: enough sampled
    # fluid cases must land on seed % modulus == 0 for the standing
    # check to actually fire in CI campaigns.
    eligible = 0
    for case_seed in range(160):
        document = sample_document(random.Random(case_seed), case_seed)
        if (document.get("backend", {}).get("kind") == "fluid"
                and document["seed"] % PROBE_PARITY_MODULUS == 0):
            eligible += 1
    assert eligible >= 5


def test_write_repro_persists_document_and_violations(tmp_path):
    case = CaseResult(
        index=4, case_seed=123, name="fuzz-123",
        violations=[Violation("conservation", "unbalanced", 2.0, {"n": 1})],
    )
    path = write_repro(str(tmp_path), case, {"name": "fuzz-123"})
    assert path.endswith("repro-case004.json")
    assert json.loads(open(path).read()) == {"name": "fuzz-123"}
    sidecar = json.loads(open(path.replace(".json", ".violations.json")).read())
    assert sidecar == [{
        "monitor": "conservation", "message": "unbalanced",
        "time": 2.0, "context": {"n": 1},
    }]


def test_campaign_counts_and_case_metadata(tmp_path):
    campaign = run_campaign(
        seed=9, count=3, out_dir=str(tmp_path), runner=lambda d: []
    )
    assert campaign.ok
    assert [c.index for c in campaign.cases] == [0, 1, 2]
    assert [c.case_seed for c in campaign.cases] == [
        9 * 1_000_003 + i for i in range(3)
    ]
    assert all(c.repro_path is None for c in campaign.cases)


def test_campaign_turns_crash_into_failure_with_unshrunk_repro(tmp_path):
    def runner(document):
        raise RuntimeError("boom")

    logged = []
    campaign = run_campaign(
        seed=2, count=1, out_dir=str(tmp_path), runner=runner,
        log=logged.append,
    )
    assert not campaign.ok
    case = campaign.failures[0]
    assert case.violations[0].monitor == "crash"
    assert "RuntimeError" in case.violations[0].message
    # Crash repros are the original document, not a shrink (the shrinker
    # cannot tell crash-for-the-same-reason apart).
    original = sample_document(random.Random(case.case_seed), case.case_seed)
    assert json.loads(open(case.repro_path).read()) == original
    assert "VIOLATION (crash)" in logged[0]
