"""Every violate() branch fires: white-box tests with minimal fakes.

The scenario-level tests prove clean runs stay silent and injected
faults are caught; these prove each individual conservation equation
and legality clause actually *can* fire, so a future refactor cannot
silently turn a monitor into a no-op.
"""

import pytest

from repro.check.monitors import (
    InvariantViolation,
    LinkConservationMonitor,
    TaqAccountingMonitor,
    TcpLegalityMonitor,
)
from repro.net.packet import ACK, DATA, Packet


class FakeQueue:
    def __init__(self, resident=0, enqueued=0):
        self._resident = resident
        self.enqueued = enqueued
        self.dropped = 0
        self.drop_observers = []

    def add_drop_observer(self, fn):
        self.drop_observers.append(fn)

    def __len__(self):
        return self._resident


class FakeLink:
    name = "fake"

    def __init__(self):
        self.queue = FakeQueue()
        self.taps = {"arrival": [], "transmit": [], "delivery": []}

    def add_tap(self, fn):
        self.taps["arrival"].append(fn)

    def add_transmit_tap(self, fn):
        self.taps["transmit"].append(fn)

    def add_delivery_tap(self, fn):
        self.taps["delivery"].append(fn)


class FakeEvents:
    def __init__(self, drained=True):
        self._drained = drained

    def peek_time(self):
        return None if self._drained else 1.0


class FakeSim:
    def __init__(self, now=9.0, drained=True):
        self.now = now
        self.events = FakeEvents(drained)


# ---------------------------------------------------------------------------
# LinkConservationMonitor branches


def test_conservation_catches_delivery_exceeding_transmit():
    monitor = LinkConservationMonitor(FakeLink())
    monitor.arrived = 2
    monitor.transmitted = 2
    monitor.delivered = 3  # one packet materialized out of thin air
    monitor.link.queue.enqueued = 2
    with pytest.raises(InvariantViolation, match="exceeds transmitted"):
        monitor._check_balance(1.0)


def test_conservation_counts_lossy_link_losses_as_departures():
    link = FakeLink()
    link.cross_traffic_losses = 2
    monitor = LinkConservationMonitor(link)
    monitor.arrived = monitor.transmitted = 5
    monitor.delivered = 3  # + 2 lost on the wire: balanced
    link.queue.enqueued = 5
    monitor._check_balance(1.0)
    assert monitor.violations == []


def test_conservation_full_drain_mismatch_is_caught():
    monitor = LinkConservationMonitor(FakeLink())
    monitor.arrived = monitor.transmitted = 4
    monitor.link.queue.enqueued = 4
    monitor.delivered = 3  # event queue empty, yet a packet is missing
    with pytest.raises(InvariantViolation, match="after drain"):
        monitor.finalize(FakeSim(drained=True))


def test_conservation_no_drain_check_while_events_pending():
    monitor = LinkConservationMonitor(FakeLink(), mode="collect")
    monitor.arrived = monitor.transmitted = 4
    monitor.link.queue.enqueued = 4
    monitor.delivered = 3  # still on the wire: legal while events remain
    monitor.finalize(FakeSim(drained=False))
    assert monitor.violations == []


def test_conservation_taps_feed_the_ledger():
    link = FakeLink()
    monitor = LinkConservationMonitor(link)
    packet = Packet(1, DATA, seq=0, size=500)
    link.taps["arrival"][0](packet, 0.0)
    link.taps["transmit"][0](packet, 0.0)
    link.taps["delivery"][0](packet, 0.0)
    link.queue.drop_observers[0](packet, 0.0)
    assert (monitor.arrived, monitor.transmitted,
            monitor.delivered, monitor.dropped) == (1, 1, 1, 1)


# ---------------------------------------------------------------------------
# TcpLegalityMonitor branches


class FakeRto:
    def __init__(self, rto=1.0, min_rto=0.2, max_rto=60.0,
                 backoff_exponent=0, max_backoff=16):
        self.rto = rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.backoff_exponent = backoff_exponent
        self.max_backoff = max_backoff


class FakeSender:
    def __init__(self, **overrides):
        self.flow_id = 1
        self.state = "established"
        self.cwnd = 2.0
        self.ssthresh = 4.0
        self.snd_una = 5
        self.snd_next = 7
        self.high_water = 9
        self.rto = FakeRto()
        for key, value in overrides.items():
            setattr(self, key, value)

    def receive(self, packet, now):
        self.last_received = packet


class FakeFlow:
    def __init__(self, sender):
        self.sender = sender


def test_ack_of_unsent_data_is_caught():
    monitor = TcpLegalityMonitor()
    sender = FakeSender()
    monitor.attach_flow(FakeFlow(sender))
    rogue = Packet(1, ACK, size=40)
    rogue.ack_seq = sender.high_water + 3
    with pytest.raises(InvariantViolation, match="unsent data"):
        sender.receive(rogue, 1.0)


def test_legal_ack_passes_through_to_the_sender():
    monitor = TcpLegalityMonitor()
    sender = FakeSender()
    monitor.attach_flow(FakeFlow(sender))
    fine = Packet(1, ACK, size=40)
    fine.ack_seq = sender.snd_una + 1
    sender.receive(fine, 1.0)
    assert sender.last_received is fine
    assert monitor.violations == []


def test_tfrc_like_sender_without_snd_una_is_skipped():
    monitor = TcpLegalityMonitor()

    class TfrcSender:
        flow_id = 2

        def receive(self, packet, now):
            pass

    sender = TfrcSender()
    monitor.attach_flow(FakeFlow(sender))
    # Not wrapped: no instance attribute shadows the class method.
    assert "receive" not in vars(sender)
    assert monitor._senders == []


def test_ssthresh_below_one_mss_is_caught():
    monitor = TcpLegalityMonitor()
    with pytest.raises(InvariantViolation, match="ssthresh"):
        monitor.check_sender(FakeSender(ssthresh=0.5), 1.0)


def test_snd_una_retreat_is_caught():
    monitor = TcpLegalityMonitor()
    sender = FakeSender(snd_una=6, snd_next=7)
    monitor.check_sender(sender, 1.0)
    sender.snd_una = 4  # cumulative ACK point went backwards
    with pytest.raises(InvariantViolation, match="retreated"):
        monitor.check_sender(sender, 2.0)


def test_rto_outside_clamp_is_caught():
    monitor = TcpLegalityMonitor()
    sender = FakeSender(rto=FakeRto(rto=120.0, max_rto=60.0))
    with pytest.raises(InvariantViolation, match="outside clamp"):
        monitor.check_sender(sender, 1.0)


def test_finalize_checks_every_attached_sender():
    monitor = TcpLegalityMonitor(mode="collect")
    bad = FakeSender(cwnd=0.1)
    monitor.attach_flow(FakeFlow(bad))
    monitor.finalize(FakeSim())
    assert [v.monitor for v in monitor.violations] == ["tcp"]


# ---------------------------------------------------------------------------
# TaqAccountingMonitor branches


class FakeClassStats:
    def __init__(self, enqueued=0, dropped=0, served=0):
        self.enqueued = enqueued
        self.dropped = dropped
        self.served = served


class FakeScheduler:
    def __init__(self, served=3, resident=2, dropped=1):
        self.stats = {"interactive": FakeClassStats(dropped=dropped, served=served)}
        self._resident = resident
        self._buffered_syns = 0
        self.new_flow_capacity = 4

    def occupancy(self, klass):
        return self._resident

    def __len__(self):
        return self._resident


class FakeAdmission:
    def __init__(self, admitted=(), waiting=(), loss_rate=0.1):
        self.admitted = dict.fromkeys(admitted)
        self.waiting = dict.fromkeys(waiting)
        self.loss_rate = loss_rate


class FakeRecord:
    def __init__(self, **overrides):
        self.flow_id = 9
        self.outstanding_drops = 0
        self.cumulative_drops = 0
        self.new_packets = 0
        self.retransmissions = 0
        self.drops = 0
        self.bytes_forwarded = 0
        self.epochs = 0
        for key, value in overrides.items():
            setattr(self, key, value)


class FakeTracker:
    def __init__(self, records=()):
        self.flows = {i: r for i, r in enumerate(records)}


class FakeTaqQueue:
    def __init__(self, **overrides):
        self.scheduler = FakeScheduler()
        self.admission = None
        self.tracker = FakeTracker()
        self.dropped = 2  # 1 class drop + 1 refusal
        self.enqueued = 5  # 3 served + 2 resident
        self.admission_refusals = 1
        for key, value in overrides.items():
            setattr(self, key, value)


def balanced_monitor(**overrides):
    return TaqAccountingMonitor(FakeTaqQueue(**overrides))


def test_balanced_fake_ledgers_are_silent():
    monitor = balanced_monitor()
    monitor.on_event(None, 1.0)
    assert monitor.violations == []


def test_occupancy_split_mismatch_is_caught():
    monitor = balanced_monitor()
    monitor.queue.scheduler.occupancy = lambda klass: 99
    with pytest.raises(InvariantViolation, match="occupancy split"):
        monitor.on_event(None, 1.0)


def test_buffered_syns_out_of_bounds_is_caught():
    monitor = balanced_monitor()
    monitor.queue.scheduler._buffered_syns = 5  # capacity is 4
    with pytest.raises(InvariantViolation, match="SYN count"):
        monitor.on_event(None, 1.0)


def test_pool_in_both_admitted_and_waiting_is_caught():
    monitor = balanced_monitor(
        admission=FakeAdmission(admitted=(7,), waiting=(7, 8))
    )
    with pytest.raises(InvariantViolation, match="both admitted and waiting"):
        monitor.on_event(None, 1.0)


def test_negative_loss_rate_is_caught():
    monitor = balanced_monitor(admission=FakeAdmission(loss_rate=-0.01))
    with pytest.raises(InvariantViolation, match="negative"):
        monitor.on_event(None, 1.0)


def test_overshooting_loss_rate_is_legal():
    monitor = balanced_monitor(admission=FakeAdmission(loss_rate=1.4))
    monitor.on_event(None, 1.0)
    assert monitor.violations == []


def test_tracker_counter_illegality_is_caught_at_finalize():
    monitor = balanced_monitor(
        tracker=FakeTracker([FakeRecord(outstanding_drops=3, cumulative_drops=1)])
    )
    with pytest.raises(InvariantViolation, match="tracker counters"):
        monitor.finalize(FakeSim())


def test_legal_tracker_records_pass_finalize():
    monitor = balanced_monitor(
        tracker=FakeTracker([FakeRecord(outstanding_drops=1, cumulative_drops=2,
                                        new_packets=5, drops=2)])
    )
    monitor.finalize(FakeSim())
    assert monitor.violations == []
