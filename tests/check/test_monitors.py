"""Unit tests for the individual invariant monitors."""

import pytest

from repro.build import build_simulation
from repro.check.monitors import (
    ClockMonitor,
    InvariantViolation,
    Monitor,
    QueueOccupancyMonitor,
    Violation,
)
from repro.check.suite import attach_monitors, run_checked
from repro.queues.droptail import DropTailQueue

from tests.check.conftest import make_spec


class FakeEvent:
    def __init__(self, time, seq):
        self.time = time
        self.seq = seq


# ---------------------------------------------------------------------------
# Base machinery


def test_mode_validation():
    with pytest.raises(ValueError):
        Monitor(mode="explode")


def test_raise_mode_raises_and_records():
    monitor = Monitor(mode="raise")
    with pytest.raises(InvariantViolation) as excinfo:
        monitor.violate("broken", time=1.5, detail=42)
    assert excinfo.value.monitor == "monitor"
    assert excinfo.value.time == 1.5
    assert excinfo.value.context == {"detail": 42}
    assert len(monitor.violations) == 1


def test_collect_mode_accumulates_without_raising():
    monitor = Monitor(mode="collect")
    monitor.violate("first", time=1.0)
    monitor.violate("second", time=2.0)
    assert [v.message for v in monitor.violations] == ["first", "second"]


def test_violation_document_reprs_non_scalar_context():
    violation = Violation("m", "msg", 0.5, {"n": 3, "obj": object()})
    document = violation.to_document()
    assert document["context"]["n"] == 3
    assert document["context"]["obj"].startswith("<object")


# ---------------------------------------------------------------------------
# ClockMonitor


def test_clock_accepts_monotone_fifo_order():
    monitor = ClockMonitor()
    monitor.on_event(FakeEvent(1.0, 0), 0.0)
    monitor.on_event(FakeEvent(1.0, 1), 1.0)
    monitor.on_event(FakeEvent(2.0, 5), 1.0)
    assert monitor.violations == []


def test_clock_catches_time_regression():
    monitor = ClockMonitor()
    with pytest.raises(InvariantViolation, match="before the clock"):
        monitor.on_event(FakeEvent(0.5, 0), 1.0)


def test_clock_catches_fifo_tie_break_inversion():
    monitor = ClockMonitor()
    monitor.on_event(FakeEvent(1.0, 7), 1.0)
    with pytest.raises(InvariantViolation, match="FIFO"):
        monitor.on_event(FakeEvent(1.0, 3), 1.0)


# ---------------------------------------------------------------------------
# QueueOccupancyMonitor


def test_occupancy_within_bounds_is_silent():
    queue = DropTailQueue(4)
    monitor = QueueOccupancyMonitor(queue)
    monitor.on_event(None, 0.0)
    assert monitor.violations == []


def test_occupancy_overflow_is_caught():
    queue = DropTailQueue(2)
    queue._fifo.extend([object(), object(), object()])  # force overflow
    monitor = QueueOccupancyMonitor(queue, label="bottleneck")
    with pytest.raises(InvariantViolation, match="outside"):
        monitor.on_event(None, 1.0)
    assert monitor.max_seen == 3


# ---------------------------------------------------------------------------
# Scenario-level: clean runs stay silent, corrupted state is caught


def test_clean_run_is_violation_free_and_ledgers_move():
    built = build_simulation(make_spec())
    suite = run_checked(built)
    assert suite.violations == []
    conservation = suite.by_name("conservation")
    assert conservation.arrived > 0
    assert conservation.delivered > 0


def test_tcp_monitor_catches_corrupted_cwnd():
    built = build_simulation(make_spec())
    suite = attach_monitors(built)
    built.run()
    legality = suite.by_name("tcp")
    sender = built.all_flows()[0].sender
    sender.cwnd = 0.25
    with pytest.raises(InvariantViolation, match="cwnd"):
        legality.check_sender(sender, built.sim.now)


def test_tcp_monitor_catches_window_pointer_disorder():
    built = build_simulation(make_spec())
    suite = attach_monitors(built)
    built.run()
    legality = suite.by_name("tcp")
    sender = built.all_flows()[0].sender
    sender.snd_next = sender.snd_una - 1
    with pytest.raises(InvariantViolation, match="window pointers"):
        legality.check_sender(sender, built.sim.now)


def test_tcp_monitor_catches_backoff_over_cap():
    built = build_simulation(make_spec())
    suite = attach_monitors(built)
    built.run()
    legality = suite.by_name("tcp")
    sender = built.all_flows()[0].sender
    sender.rto.backoff_exponent = sender.rto.max_backoff + 1
    with pytest.raises(InvariantViolation, match="backoff"):
        legality.check_sender(sender, built.sim.now)


def test_tcp_monitor_skips_pre_established_senders():
    built = build_simulation(make_spec())
    suite = attach_monitors(built)
    legality = suite.by_name("tcp")
    sender = built.all_flows()[0].sender
    assert sender.state != "established"
    sender.cwnd = 0.0  # illegal, but the flow has not started yet
    legality.check_sender(sender, 0.0)
    assert legality.violations == []
    sender.cwnd = 1.0


def test_taq_monitor_clean_then_catches_ledger_corruption():
    built = build_simulation(make_spec(queue={"kind": "taq+ac"}))
    suite = run_checked(built)
    assert suite.violations == []
    taq = suite.by_name("taq")
    built.queue.enqueued += 1  # corrupt the admit ledger
    with pytest.raises(InvariantViolation, match="admit ledger"):
        taq.on_event(None, built.sim.now)


def test_taq_monitor_catches_drop_ledger_corruption():
    built = build_simulation(make_spec(queue={"kind": "taq"}))
    suite = run_checked(built)
    taq = suite.by_name("taq")
    built.queue.dropped += 1
    with pytest.raises(InvariantViolation, match="drop ledger"):
        taq.on_event(None, built.sim.now)
