"""MonitorSuite wiring: attachment, fan-out, and zero-overhead-when-off.

The equivalence tests are the heart of the "passive observer" contract:
an armed run must pop exactly the same events and produce bit-identical
metrics as an unarmed one, and a run without monitors must carry no
instrumentation at all (``sim.monitor is None``).
"""

import pytest

from repro.build import build_simulation
from repro.check.suite import attach_monitors, run_checked

from tests.check.conftest import make_spec


def metrics_fingerprint(built):
    collector = built.collector
    return {
        "processed": built.sim.processed,
        "now": built.sim.now,
        "goodputs": [collector.slice_goodputs(i) for i in collector.slice_indices()],
        "queue": (built.queue.enqueued, built.queue.dropped),
        "timeouts": sorted(
            (f.flow_id, f.sender.stats.timeouts, f.sender.stats.retransmits)
            for f in built.all_flows()
        ),
    }


def test_attach_covers_both_dumbbell_links():
    built = build_simulation(make_spec())
    suite = attach_monitors(built)
    names = [m.name for m in suite.monitors]
    assert names.count("conservation") == 2  # forward + reverse
    assert names.count("occupancy") == 2
    assert "clock" in names and "tcp" in names
    assert "taq" not in names  # droptail has no TAQ ledgers
    assert built.sim.monitor is suite


def test_attach_adds_taq_monitor_for_taq_queues():
    built = build_simulation(make_spec(queue={"kind": "taq"}))
    names = [m.name for m in attach_monitors(built).monitors]
    assert "taq" in names


def test_monitor_families_can_be_switched_off():
    built = build_simulation(make_spec())
    suite = attach_monitors(built, tcp=False, occupancy=False, clock=False)
    names = {m.name for m in suite.monitors}
    assert names == {"conservation"}


def test_by_name_and_missing_name():
    built = build_simulation(make_spec())
    suite = attach_monitors(built)
    assert suite.by_name("clock").name == "clock"
    with pytest.raises(KeyError):
        suite.by_name("no-such-monitor")


def test_finalize_is_idempotent_and_detach_unhooks():
    built = build_simulation(make_spec())
    suite = run_checked(built)
    before = len(suite.violations)
    suite.finalize()  # second call must not re-run end checks
    assert len(suite.violations) == before
    suite.detach()
    assert built.sim.monitor is None


def test_unarmed_run_carries_no_instrumentation():
    built = build_simulation(make_spec())
    assert built.sim.monitor is None
    built.run()
    assert built.sim.monitor is None


def test_armed_run_is_bit_identical_to_unarmed():
    bare = build_simulation(make_spec())
    bare.run()

    armed = build_simulation(make_spec())
    suite = run_checked(armed, mode="collect")
    assert suite.violations == []
    assert metrics_fingerprint(armed) == metrics_fingerprint(bare)


def test_armed_run_is_bit_identical_under_taq_too():
    queue = {"kind": "taq+ac"}
    bare = build_simulation(make_spec(queue=queue))
    bare.run()
    armed = build_simulation(make_spec(queue=queue))
    suite = run_checked(armed, mode="collect")
    assert suite.violations == []
    assert metrics_fingerprint(armed) == metrics_fingerprint(bare)


def test_violation_documents_round_trip():
    built = build_simulation(make_spec())
    suite = run_checked(built, mode="collect")
    suite.by_name("clock").violate("synthetic", time=1.0)
    documents = suite.violation_documents()
    assert documents == [
        {"monitor": "clock", "message": "synthetic", "time": 1.0, "context": {}}
    ]
