"""Shared pytest wiring: the ``slow`` marker and its ``--run-slow`` gate.

Golden-equivalence tests re-run whole experiments; the slow ones add
minutes of wall time, so the default run skips them and CI's
golden-equivalence job (or a local ``--run-slow``) opts in.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="also run tests marked slow (full golden-equivalence set)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: takes minutes; skipped unless --run-slow is given"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip = pytest.mark.skip(reason="slow; use --run-slow to include")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
