"""Unit tests for flow-pool admission control."""

import pytest

from repro.core.admission import AdmissionController


def low_loss(controller, now=0.0):
    """Feed an interval of ~2% loss."""
    for i in range(100):
        controller.note_arrival(now)
        if i % 50 == 0:
            controller.note_drop(now)
    controller.note_arrival(now + controller.measure_interval + 0.01)


def high_loss(controller, now=0.0, rate=0.3, n=200):
    for i in range(n):
        controller.note_arrival(now)
        if i % int(1 / rate) == 0:
            controller.note_drop(now)
    controller.note_arrival(now + controller.measure_interval + 0.01)


def test_pool_admitted_under_low_loss():
    ctrl = AdmissionController()
    low_loss(ctrl)
    assert ctrl.admits(1, 1.0)


def test_unpooled_traffic_always_admitted():
    ctrl = AdmissionController()
    high_loss(ctrl)
    high_loss(ctrl, now=3.0)
    assert ctrl.admits(-1, 5.0)


def test_new_pool_refused_under_high_loss():
    ctrl = AdmissionController()
    high_loss(ctrl)
    high_loss(ctrl, now=3.0)
    assert ctrl.loss_rate > ctrl.p_thresh
    assert not ctrl.admits(1, 5.0)
    assert ctrl.refused == 1


def test_admitted_pool_stays_admitted_under_high_loss():
    ctrl = AdmissionController()
    low_loss(ctrl)
    assert ctrl.admits(1, 1.0)
    high_loss(ctrl, now=3.0)
    high_loss(ctrl, now=6.0)
    assert ctrl.admits(1, 8.0)


def test_flows_of_same_pool_share_admission():
    ctrl = AdmissionController()
    low_loss(ctrl)
    assert ctrl.admits(7, 1.0)
    high_loss(ctrl, now=3.0)
    high_loss(ctrl, now=6.0)
    # Another connection of the already-admitted pool 7.
    assert ctrl.admits(7, 8.0)
    # A different pool is refused.
    assert not ctrl.admits(8, 8.0)


def test_t_wait_guarantees_admission():
    ctrl = AdmissionController(t_wait=3.0)
    high_loss(ctrl)
    high_loss(ctrl, now=3.0)
    assert not ctrl.admits(1, 5.0)
    assert not ctrl.admits(1, 6.0)
    assert ctrl.admits(1, 5.0 + 3.0)
    assert ctrl.force_admitted == 1


def test_loss_rate_is_smoothed():
    ctrl = AdmissionController(measure_interval=1.0)
    high_loss(ctrl, rate=0.4)
    first = ctrl.loss_rate
    # One quiet interval must not reset the estimate to zero.
    for _ in range(50):
        ctrl.note_arrival(2.0)
    ctrl.note_arrival(3.1)
    assert ctrl.loss_rate > first / 4


def test_idle_pools_forgotten():
    ctrl = AdmissionController(pool_idle_timeout=10.0)
    low_loss(ctrl)
    assert ctrl.admits(1, 1.0)
    high_loss(ctrl, now=3.0)
    high_loss(ctrl, now=6.0)
    # Pool 1 idle for > timeout: it must re-apply, and loss is high now.
    assert not ctrl.admits(1, 50.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        AdmissionController(p_thresh=0.0)
    with pytest.raises(ValueError):
        AdmissionController(p_thresh=1.5)
