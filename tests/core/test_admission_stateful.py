"""Stateful property tests of the admission controller.

Random interleavings of traffic accounting, admission queries and time
advances must preserve:

- a pool, once admitted, stays admitted while it keeps talking
  (§4.3: honoring commitments to admitted flow pools);
- unpooled traffic (pool -1) is never refused;
- the paced force-admission never admits more than one pool per
  ``t_wait`` while the loss gate is closed;
- the loss estimate stays within [0, 1].
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.admission import AdmissionController


class AdmissionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.controller = AdmissionController(
            p_thresh=0.1, t_wait=3.0, measure_interval=1.0, pool_idle_timeout=1e9
        )
        self.now = 0.0
        self.admitted_history = set()
        self.force_admissions = []  # times

    @rule(n=st.integers(min_value=1, max_value=50),
          lossy=st.booleans())
    def traffic(self, n, lossy):
        for i in range(n):
            self.controller.note_arrival(self.now)
            if lossy and i % 3 == 0:
                self.controller.note_drop(self.now)

    @rule(dt=st.floats(min_value=0.1, max_value=5.0))
    def advance(self, dt):
        self.now += dt
        # Roll the measurement window.
        self.controller.note_arrival(self.now)

    @rule(pool=st.integers(min_value=1, max_value=5))
    def ask(self, pool):
        before_force = self.controller.force_admitted
        admitted = self.controller.admits(pool, self.now)
        if admitted:
            self.admitted_history.add(pool)
        if self.controller.force_admitted > before_force:
            self.force_admissions.append(self.now)

    @rule()
    def ask_unpooled(self):
        assert self.controller.admits(-1, self.now)

    @precondition(lambda self: self.admitted_history)
    @rule()
    def admitted_pool_stays_admitted(self):
        # Pools in our history that kept talking (idle timeout is huge
        # here) must still be admitted.
        for pool in self.admitted_history:
            assert self.controller.admits(pool, self.now)

    # -------------------------------------------------------- invariants
    @invariant()
    def loss_estimate_bounded(self):
        assert 0.0 <= self.controller.loss_rate <= 1.0

    @invariant()
    def force_admissions_paced(self):
        times = sorted(self.force_admissions)
        for a, b in zip(times, times[1:]):
            assert b - a >= self.controller.t_wait - 1e-9

    @invariant()
    def waiting_and_admitted_disjoint(self):
        assert not (
            set(self.controller.waiting) & set(self.controller.admitted)
        )


AdmissionMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
TestAdmissionStateful = AdmissionMachine.TestCase
