"""Unit tests for the Fig 7 state classifier."""

from repro.core.classifier import EpochObservation, classify_epoch
from repro.core.states import FlowState


def obs(**kwargs):
    return EpochObservation(**kwargs)


def test_growth_keeps_slow_start():
    state = classify_epoch(
        FlowState.SLOW_START, obs(new_packets=8, prev_new_packets=4)
    )
    assert state == FlowState.SLOW_START


def test_flat_growth_is_normal():
    state = classify_epoch(
        FlowState.SLOW_START, obs(new_packets=4, prev_new_packets=4)
    )
    assert state == FlowState.NORMAL


def test_small_linear_growth_is_normal():
    state = classify_epoch(
        FlowState.NORMAL, obs(new_packets=5, prev_new_packets=4)
    )
    assert state == FlowState.NORMAL


def test_drop_moves_to_loss_recovery():
    state = classify_epoch(FlowState.NORMAL, obs(new_packets=3, drops=1))
    assert state == FlowState.LOSS_RECOVERY


def test_retransmissions_mean_loss_recovery():
    state = classify_epoch(FlowState.NORMAL, obs(retransmissions=1, new_packets=0))
    assert state == FlowState.LOSS_RECOVERY


def test_silence_after_loss_is_timeout_silence():
    state = classify_epoch(FlowState.LOSS_RECOVERY, obs(silent_epochs=1))
    assert state == FlowState.TIMEOUT_SILENCE


def test_retransmission_after_silence_is_timeout_recovery():
    state = classify_epoch(
        FlowState.TIMEOUT_SILENCE, obs(retransmissions=1)
    )
    assert state == FlowState.TIMEOUT_RECOVERY


def test_prolonged_silence_is_extended():
    state = classify_epoch(FlowState.TIMEOUT_SILENCE, obs(silent_epochs=2))
    assert state == FlowState.EXTENDED_SILENCE
    state = classify_epoch(FlowState.EXTENDED_SILENCE, obs(silent_epochs=5))
    assert state == FlowState.EXTENDED_SILENCE


def test_recovered_timeout_flow_enters_slow_start():
    # Retransmissions got through; next epoch has only fresh data.
    state = classify_epoch(
        FlowState.TIMEOUT_RECOVERY, obs(new_packets=2, prev_new_packets=0)
    )
    assert state == FlowState.SLOW_START


def test_silence_without_loss_history_is_dormant():
    state = classify_epoch(FlowState.NORMAL, obs(silent_epochs=1))
    assert state == FlowState.DORMANT
    # Dormant flows stay dormant while silent.
    assert classify_epoch(FlowState.DORMANT, obs(silent_epochs=4)) == FlowState.DORMANT


def test_dormant_flow_waking_up_classifies_by_traffic():
    state = classify_epoch(
        FlowState.DORMANT, obs(new_packets=4, prev_new_packets=0)
    )
    assert state == FlowState.SLOW_START


def test_outstanding_drops_keep_flow_in_recovery():
    state = classify_epoch(
        FlowState.LOSS_RECOVERY, obs(new_packets=1, outstanding_drops=1)
    )
    assert state == FlowState.LOSS_RECOVERY


def test_silent_with_outstanding_drops_is_not_dormant():
    state = classify_epoch(
        FlowState.NORMAL, obs(silent_epochs=1, outstanding_drops=1)
    )
    assert state == FlowState.TIMEOUT_SILENCE


def test_extended_silence_retransmission_is_timeout_recovery():
    state = classify_epoch(FlowState.EXTENDED_SILENCE, obs(retransmissions=1))
    assert state == FlowState.TIMEOUT_RECOVERY
