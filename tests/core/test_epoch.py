"""Unit tests for middlebox epoch estimation."""

import pytest

from repro.core.epoch import EpochEstimator


def test_default_estimate_before_signal():
    est = EpochEstimator(default_epoch=0.3)
    assert est.estimate == 0.3


def test_syn_to_first_data_bootstraps_one_way_estimate():
    est = EpochEstimator(default_epoch=1.0)
    est.observe_syn(10.0)
    est.observe_data(0, 10.25)
    assert est.estimate == pytest.approx(0.25)


def test_two_way_ack_matching_samples_rtt():
    est = EpochEstimator(default_epoch=1.0)
    est.observe_data(0, 0.0)
    est.observe_ack(1, 0.2)  # acks segment 0
    assert est.estimate == pytest.approx(0.2)


def test_ack_matches_newest_covered_segment():
    est = EpochEstimator(default_epoch=1.0)
    est.observe_data(0, 0.0)
    est.observe_data(1, 0.3)
    est.observe_ack(2, 0.5)  # covers both; newest (seq 1) gives 0.2
    assert est.estimate == pytest.approx(0.2)


def test_moving_average_damps_outliers():
    est = EpochEstimator(default_epoch=1.0, alpha=0.25)
    est.observe_data(0, 0.0)
    est.observe_ack(1, 0.2)
    est.observe_data(1, 1.0)
    est.observe_ack(2, 2.0)  # 1.0s outlier
    assert 0.2 < est.estimate < 0.5


def test_estimate_clamped():
    est = EpochEstimator(default_epoch=1.0, min_epoch=0.05, max_epoch=2.0)
    est.observe_data(0, 0.0)
    est.observe_ack(1, 100.0)
    assert est.estimate == 2.0


def test_burst_gap_revises_one_way_estimate():
    # No SYN observed (pure one-way, mid-flow): burst spacing drives the
    # estimate from the small default toward the true 0.5 s epoch.
    est = EpochEstimator(default_epoch=0.1, alpha=1.0)
    for start in (1.0, 1.5, 2.0):
        est.observe_data(int(start * 10), start)
        est.observe_data(int(start * 10) + 1, start + 0.01)
    assert est.estimate == pytest.approx(0.5, rel=0.2)


def test_ack_without_pending_data_is_harmless():
    est = EpochEstimator()
    est.observe_ack(5, 1.0)
    assert est.samples == 0


def test_pending_table_bounded():
    est = EpochEstimator()
    for seq in range(1000):
        est.observe_data(seq, seq * 0.001)
    assert len(est._pending) <= 64
