"""Unit tests for the fair-share estimator."""

import pytest

from repro.core.fairshare import FairShareEstimator
from repro.core.tracker import FlowTracker
from repro.net.packet import DATA, Packet


def data(flow, seq, size=500):
    return Packet(flow, DATA, seq=seq, size=size)


def make(model="fair-queuing", capacity=100_000, epoch=1.0):
    tracker = FlowTracker(default_epoch=epoch)
    return tracker, FairShareEstimator(tracker, capacity_bps=capacity, model=model)


def test_equal_share_under_fair_queuing():
    tracker, fs = make()
    tracker.observe_arrival(data(1, 0), 0.0)
    tracker.observe_arrival(data(2, 0), 0.0)
    record = tracker.lookup(1)
    assert fs.fair_share_bps(record, 0.0) == pytest.approx(50_000)


def test_hog_is_above_share():
    tracker, fs = make(capacity=10_000)
    # Flow 1 pushes 4 x 500B per 1s epoch = 16 kbps against 5 kbps share.
    t = 0.0
    seq = 0
    for epoch in range(6):
        for _ in range(4):
            tracker.observe_arrival(data(1, seq), t)
            seq += 1
        tracker.observe_arrival(data(2, epoch), t)
        t = (epoch + 1) * 1.0
    record = tracker.lookup(1)
    record.roll_epochs(t)
    assert fs.is_above_share(record, t)


def test_quiet_flow_is_below_share():
    tracker, fs = make(capacity=10_000)
    t = 0.0
    for epoch in range(6):
        tracker.observe_arrival(data(1, epoch), t)
        tracker.observe_arrival(data(2, epoch), t)
        t = (epoch + 1) * 1.0
    record = tracker.lookup(1)
    record.roll_epochs(t)
    # 4 kbps each against a 5 kbps share.
    assert not fs.is_above_share(record, t)


def test_zero_capacity_never_above():
    tracker, fs = make(capacity=0)
    tracker.observe_arrival(data(1, 0), 0.0)
    assert not fs.is_above_share(tracker.lookup(1), 0.0)


def test_proportional_model_favours_short_rtt():
    tracker, fs_prop = make(model="proportional", capacity=100_000)
    tracker.observe_arrival(data(1, 0), 0.0)
    tracker.observe_arrival(data(2, 0), 0.0)
    fast, slow = tracker.lookup(1), tracker.lookup(2)
    fast.estimator._feed(0.1)
    slow.estimator._feed(0.4)
    assert fs_prop.fair_share_bps(fast, 0.0) > fs_prop.fair_share_bps(slow, 0.0)


def test_proportional_shares_sum_to_capacity():
    tracker, fs = make(model="proportional", capacity=100_000)
    tracker.observe_arrival(data(1, 0), 0.0)
    tracker.observe_arrival(data(2, 0), 0.0)
    tracker.observe_arrival(data(3, 0), 0.0)
    total = sum(
        fs.fair_share_bps(tracker.lookup(f), 0.0) for f in (1, 2, 3)
    )
    assert total == pytest.approx(100_000)


def test_unknown_model_rejected():
    tracker = FlowTracker()
    with pytest.raises(ValueError):
        FairShareEstimator(tracker, model="bogus")
