"""Unit tests for pool-granularity fair share and admission feedback."""

import pytest

from repro.core.admission import AdmissionController
from repro.core.fairshare import FairShareEstimator
from repro.core.tracker import FlowTracker
from repro.net.packet import DATA, Packet


def data(flow, seq=0, pool=-1):
    return Packet(flow, DATA, seq=seq, size=500, pool_id=pool)


# --------------------------------------------------- pool fair share
def make_pool_tracker():
    tracker = FlowTracker(default_epoch=1.0)
    # Pool 1: three flows; pool 2: one flow.
    for flow, pool in ((1, 1), (2, 1), (3, 1), (4, 2)):
        tracker.observe_arrival(data(flow, pool=pool), 0.0)
    return tracker


def test_pool_share_splits_by_pool_then_flow():
    tracker = make_pool_tracker()
    fs = FairShareEstimator(tracker, capacity_bps=120_000, granularity="pool")
    # 2 pools -> 60k each; pool 1 has 3 flows -> 20k per flow.
    assert fs.fair_share_bps(tracker.lookup(1), 0.0) == pytest.approx(20_000)
    assert fs.fair_share_bps(tracker.lookup(4), 0.0) == pytest.approx(60_000)


def test_flow_granularity_ignores_pools():
    tracker = make_pool_tracker()
    fs = FairShareEstimator(tracker, capacity_bps=120_000, granularity="flow")
    assert fs.fair_share_bps(tracker.lookup(1), 0.0) == pytest.approx(30_000)


def test_unpooled_flows_count_as_own_pool():
    tracker = FlowTracker(default_epoch=1.0)
    tracker.observe_arrival(data(1, pool=-1), 0.0)
    tracker.observe_arrival(data(2, pool=-1), 0.0)
    fs = FairShareEstimator(tracker, capacity_bps=100_000, granularity="pool")
    assert fs.fair_share_bps(tracker.lookup(1), 0.0) == pytest.approx(50_000)


def test_granularity_validated():
    with pytest.raises(ValueError):
        FairShareEstimator(FlowTracker(), granularity="session")


def test_taq_queue_accepts_granularity():
    from repro.core import TAQQueue

    queue = TAQQueue(capacity_pkts=10, fairness_granularity="pool")
    assert queue.fairshare.granularity == "pool"


# --------------------------------------------- admission wait feedback
def congest(controller):
    # Two consecutive 25%-loss windows push the smoothed estimate well
    # past p_thresh; the final arrival just rolls the second window in.
    for t in (0.0, controller.measure_interval + 0.1):
        for i in range(200):
            controller.note_arrival(t)
            if i % 4 == 0:
                controller.note_drop(t)
    controller.note_arrival(2 * controller.measure_interval + 0.3)


def test_expected_wait_zero_for_admitted_and_unpooled():
    ctrl = AdmissionController()
    assert ctrl.expected_wait(-1, 0.0) == 0.0
    ctrl.admits(1, 0.0)  # low loss: admitted
    assert ctrl.expected_wait(1, 0.0) == 0.0


def test_expected_wait_grows_with_queue_position():
    ctrl = AdmissionController(t_wait=3.0)
    congest(ctrl)
    for pool in (10, 11, 12):
        assert not ctrl.admits(pool, 5.0)
    w1 = ctrl.expected_wait(10, 5.0)
    w2 = ctrl.expected_wait(11, 5.0)
    w3 = ctrl.expected_wait(12, 5.0)
    assert w1 < w2 < w3
    assert w3 >= 2 * ctrl.t_wait


def test_queue_snapshot_fifo_order():
    ctrl = AdmissionController(t_wait=3.0)
    congest(ctrl)
    assert not ctrl.admits(7, 5.0)
    assert not ctrl.admits(8, 6.0)
    snapshot = ctrl.queue_snapshot(7.0)
    assert [row[0] for row in snapshot] == [7, 8]
    waited = [row[1] for row in snapshot]
    assert waited[0] == pytest.approx(2.0)
    assert waited[1] == pytest.approx(1.0)
    assert all(row[2] >= 0 for row in snapshot)


def test_expected_wait_honoured_by_force_admission():
    ctrl = AdmissionController(t_wait=2.0)
    congest(ctrl)
    assert not ctrl.admits(9, 5.0)
    promised = ctrl.expected_wait(9, 5.0)
    # Keep knocking after the promised wait: admission is granted.
    assert ctrl.admits(9, 5.0 + promised + 0.01)
