"""Unit tests for the §4.1 next-state predictor."""

from repro.core.epoch import EpochEstimator
from repro.core.prediction import Action, predict_next_state
from repro.core.states import FlowState
from repro.core.tracker import FlowRecord


def make_record(state=FlowState.NORMAL, **fields):
    record = FlowRecord(1, -1, 0.0, EpochEstimator())
    record.state = state
    for name, value in fields.items():
        setattr(record, name, value)
    return record


def test_forward_is_always_safe():
    for state in FlowState:
        prediction = predict_next_state(make_record(state=state), Action.FORWARD)
        assert prediction.safe


def test_forward_keeps_normal_flow_active():
    record = make_record(state=FlowState.NORMAL, new_packets=2, prev_new_packets=2)
    prediction = predict_next_state(record, Action.FORWARD)
    assert prediction.next_state in (FlowState.NORMAL, FlowState.SLOW_START)


def test_drop_new_at_small_window_risks_timeout():
    record = make_record(state=FlowState.NORMAL, new_packets=1, prev_new_packets=1)
    prediction = predict_next_state(record, Action.DROP_NEW)
    assert prediction.risks_timeout
    assert prediction.next_state == FlowState.LOSS_RECOVERY


def test_drop_new_at_large_window_is_recoverable():
    record = make_record(state=FlowState.NORMAL, new_packets=8, prev_new_packets=8)
    prediction = predict_next_state(record, Action.DROP_NEW)
    assert not prediction.risks_timeout
    assert prediction.next_state == FlowState.LOSS_RECOVERY


def test_second_drop_in_epoch_risks_timeout_even_at_large_window():
    record = make_record(
        state=FlowState.LOSS_RECOVERY, new_packets=8, prev_new_packets=8, drops=1
    )
    prediction = predict_next_state(record, Action.DROP_NEW)
    assert prediction.risks_timeout


def test_drop_retransmission_always_risks_timeout():
    record = make_record(state=FlowState.LOSS_RECOVERY)
    prediction = predict_next_state(record, Action.DROP_RETRANSMISSION)
    assert prediction.risks_timeout
    assert prediction.next_state == FlowState.TIMEOUT_SILENCE


def test_drop_retransmission_of_recovering_flow_risks_repetitive():
    for state in (FlowState.TIMEOUT_RECOVERY, FlowState.EXTENDED_SILENCE):
        record = make_record(state=state)
        prediction = predict_next_state(record, Action.DROP_RETRANSMISSION)
        assert prediction.risks_repetitive_timeout
        assert prediction.next_state == FlowState.EXTENDED_SILENCE


def test_drop_new_during_timeout_recovery_risks_repetitive():
    record = make_record(
        state=FlowState.TIMEOUT_RECOVERY, new_packets=1, prev_new_packets=0
    )
    prediction = predict_next_state(record, Action.DROP_NEW)
    assert prediction.risks_repetitive_timeout


def test_safe_property():
    record = make_record(state=FlowState.NORMAL, new_packets=8, prev_new_packets=8)
    assert predict_next_state(record, Action.FORWARD).safe
    assert not predict_next_state(record, Action.DROP_RETRANSMISSION).safe
