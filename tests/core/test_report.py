"""Tests for the TAQ introspection report."""

import pytest

from repro.core import AdmissionController, TAQQueue, taq_report
from repro.core.scheduler import PacketClass
from repro.net.packet import DATA, SYN, Packet


def data(flow=1, seq=0, pool=-1):
    return Packet(flow, DATA, seq=seq, size=500, pool_id=pool)


def test_report_on_detached_queue_requires_now():
    queue = TAQQueue(capacity_pkts=10)
    with pytest.raises(ValueError):
        taq_report(queue)
    report = taq_report(queue, now=0.0)
    assert report.occupancy == 0
    assert report.capacity == 10


def test_report_counts_classes_and_flows():
    queue = TAQQueue(capacity_pkts=10, default_epoch=1.0)
    queue.enqueue(data(flow=1, seq=0), 0.0)
    queue.enqueue(data(flow=2, seq=0), 0.0)
    queue.enqueue(data(flow=1, seq=0), 1.0)  # retransmission
    report = taq_report(queue, now=1.0)
    assert report.tracked_flows == 2
    assert report.occupancy == 3
    assert report.classes[PacketClass.RECOVERY.value].buffered == 1
    assert sum(c.buffered for c in report.classes.values()) == 3


def test_report_service_share():
    queue = TAQQueue(capacity_pkts=10)
    for seq in range(4):
        queue.enqueue(data(seq=seq), 0.0)
    for _ in range(4):
        queue.dequeue(0.0)
    report = taq_report(queue, now=0.0)
    shares = [report.service_share(name) for name in report.classes]
    assert sum(shares) == pytest.approx(1.0)


def test_report_admission_section():
    ctrl = AdmissionController()
    queue = TAQQueue(capacity_pkts=10, admission=ctrl)
    queue.enqueue(Packet(1, SYN, pool_id=5), 0.0)
    report = taq_report(queue, now=0.0)
    assert report.admission_enabled
    assert report.admitted_pools == 1
    text = str(report)
    assert "admission:" in text
    assert "pools admitted" in text


def test_report_renders_without_admission():
    queue = TAQQueue(capacity_pkts=10)
    text = str(taq_report(queue, now=0.0))
    assert "admission: disabled" in text
    assert "TAQ report" in text


def test_report_from_live_run():
    from repro.experiments.runner import build_dumbbell
    from repro.workloads import spawn_bulk_flows

    bench = build_dumbbell("taq", 600_000, rtt=0.2, seed=1)
    spawn_bulk_flows(bench.bell, 40, start_window=2.0, extra_rtt_max=0.1)
    bench.sim.run(until=30.0)
    report = taq_report(bench.queue)
    assert report.tracked_flows == 40
    assert report.active_flows >= 1
    assert report.loss_rate > 0.0
    assert sum(report.flow_states.values()) == 40
    assert report.service_share(PacketClass.RECOVERY.value) < 0.6
