"""Unit tests for TAQ's multi-class scheduler."""

import pytest

from repro.core.scheduler import PacketClass, TAQScheduler
from repro.net.packet import DATA, Packet


def pkt(flow=1, seq=0):
    return Packet(flow, DATA, seq=seq, size=500)


def drain(sched, n=None):
    out = []
    while (p := sched.dequeue()) is not None:
        out.append(p)
        if n is not None and len(out) >= n:
            break
    return out


def test_recovery_served_first():
    sched = TAQScheduler(capacity_pkts=10)
    below = pkt(seq=1)
    recovery = pkt(seq=2)
    sched.enqueue(below, PacketClass.BELOW_FAIR_SHARE)
    sched.enqueue(recovery, PacketClass.RECOVERY, priority=1.0)
    assert sched.dequeue() is recovery


def test_recovery_ordered_by_silence_length():
    sched = TAQScheduler(capacity_pkts=10)
    short = pkt(seq=1)
    long_ = pkt(seq=2)
    sched.enqueue(short, PacketClass.RECOVERY, priority=0.5)
    sched.enqueue(long_, PacketClass.RECOVERY, priority=10.0)
    assert sched.dequeue() is long_
    assert sched.dequeue() is short


def test_recovery_service_capped_when_others_wait():
    sched = TAQScheduler(capacity_pkts=200, recovery_service_share=0.25, service_window=8)
    for i in range(50):
        sched.enqueue(pkt(seq=i), PacketClass.RECOVERY, priority=1.0)
        sched.enqueue(pkt(seq=100 + i), PacketClass.BELOW_FAIR_SHARE)
    served = drain(sched, n=40)
    recovery_share = sum(
        1 for p in served if p.seq < 50
    ) / len(served)
    assert recovery_share <= 0.4  # capped near 0.25, not monopolizing


def test_recovery_work_conserving_when_alone():
    sched = TAQScheduler(capacity_pkts=10, recovery_service_share=0.1)
    for i in range(5):
        sched.enqueue(pkt(seq=i), PacketClass.RECOVERY, priority=1.0)
    assert len(drain(sched)) == 5


def test_above_share_served_last():
    sched = TAQScheduler(capacity_pkts=10)
    above = pkt(seq=1)
    below = pkt(seq=2)
    new = pkt(seq=3)
    sched.enqueue(above, PacketClass.ABOVE_FAIR_SHARE)
    sched.enqueue(below, PacketClass.BELOW_FAIR_SHARE)
    sched.enqueue(new, PacketClass.NEW_FLOW)
    order = drain(sched)
    assert order[-1] is above


def test_level2_longest_backlog_first():
    sched = TAQScheduler(capacity_pkts=20)
    for i in range(5):
        sched.enqueue(pkt(seq=i), PacketClass.BELOW_FAIR_SHARE)
    sched.enqueue(pkt(seq=100), PacketClass.OVER_PENALIZED)
    first = sched.dequeue()
    assert first.seq < 100  # below queue is longer, served first


def test_new_flow_capacity_caps_connection_attempts():
    from repro.net.packet import SYN

    sched = TAQScheduler(capacity_pkts=100, new_flow_capacity=2)

    def syn(flow):
        return Packet(flow, SYN)

    assert sched.enqueue(syn(1), PacketClass.NEW_FLOW, connection_attempt=True)[0]
    assert sched.enqueue(syn(2), PacketClass.NEW_FLOW, connection_attempt=True)[0]
    accepted, _ = sched.enqueue(syn(3), PacketClass.NEW_FLOW, connection_attempt=True)
    assert not accepted
    # Data of young flows is NOT capped.
    assert sched.enqueue(pkt(seq=2), PacketClass.NEW_FLOW)[0]
    # Serving a SYN frees an attempt slot.
    served = sched.dequeue()
    assert served.kind == SYN
    assert sched.enqueue(syn(4), PacketClass.NEW_FLOW, connection_attempt=True)[0]


def test_eviction_prefers_above_fair_share():
    sched = TAQScheduler(capacity_pkts=2)
    above = pkt(seq=1)
    sched.enqueue(above, PacketClass.ABOVE_FAIR_SHARE)
    sched.enqueue(pkt(seq=2), PacketClass.BELOW_FAIR_SHARE)
    accepted, evicted = sched.enqueue(pkt(seq=3), PacketClass.RECOVERY, priority=1.0)
    assert accepted
    assert evicted is above


def test_arriving_above_rejected_when_everything_outranks_it():
    sched = TAQScheduler(capacity_pkts=2)
    sched.enqueue(pkt(seq=1), PacketClass.RECOVERY, priority=1.0)
    sched.enqueue(pkt(seq=2), PacketClass.BELOW_FAIR_SHARE)
    accepted, evicted = sched.enqueue(pkt(seq=3), PacketClass.ABOVE_FAIR_SHARE)
    assert not accepted
    assert evicted is None


def test_same_rank_eviction_steals_longest_queue():
    sched = TAQScheduler(capacity_pkts=4)
    for i in range(3):
        sched.enqueue(pkt(seq=i), PacketClass.OVER_PENALIZED)
    sched.enqueue(pkt(seq=10), PacketClass.BELOW_FAIR_SHARE)
    accepted, evicted = sched.enqueue(pkt(seq=20), PacketClass.BELOW_FAIR_SHARE)
    assert accepted
    assert evicted is not None and evicted.seq < 3  # stolen from the long queue


def test_own_longest_queue_rejects_arrival():
    sched = TAQScheduler(capacity_pkts=3)
    for i in range(3):
        sched.enqueue(pkt(seq=i), PacketClass.BELOW_FAIR_SHARE)
    accepted, evicted = sched.enqueue(pkt(seq=9), PacketClass.BELOW_FAIR_SHARE)
    assert not accepted and evicted is None


def test_recovery_eviction_only_for_higher_priority_recovery():
    sched = TAQScheduler(capacity_pkts=2)
    low = pkt(seq=1)
    high = pkt(seq=2)
    sched.enqueue(low, PacketClass.RECOVERY, priority=1.0)
    sched.enqueue(high, PacketClass.RECOVERY, priority=5.0)
    # Arriving with lower priority than everything buffered: rejected.
    accepted, evicted = sched.enqueue(pkt(seq=3), PacketClass.RECOVERY, priority=0.5)
    assert not accepted
    # Arriving with higher priority than the lowest buffered: evicts it.
    accepted, evicted = sched.enqueue(pkt(seq=4), PacketClass.RECOVERY, priority=9.0)
    assert accepted
    assert evicted is low


def test_total_occupancy_respects_capacity():
    sched = TAQScheduler(capacity_pkts=5)
    for i in range(20):
        sched.enqueue(pkt(seq=i), PacketClass.BELOW_FAIR_SHARE)
    assert len(sched) <= 5


def test_empty_dequeue_returns_none():
    sched = TAQScheduler(capacity_pkts=5)
    assert sched.dequeue() is None


def test_stats_counters_consistent():
    sched = TAQScheduler(capacity_pkts=3)
    for i in range(6):
        sched.enqueue(pkt(seq=i), PacketClass.BELOW_FAIR_SHARE)
    drained = drain(sched)
    stats = sched.stats[PacketClass.BELOW_FAIR_SHARE]
    assert stats.enqueued == len(drained)
    assert stats.enqueued + stats.dropped == 6


def test_parameter_validation():
    with pytest.raises(ValueError):
        TAQScheduler(capacity_pkts=0)
    with pytest.raises(ValueError):
        TAQScheduler(capacity_pkts=5, recovery_service_share=0.0)
