"""Stateful property tests of the TAQ scheduler's invariants.

Hypothesis drives random interleavings of enqueues (all classes,
arbitrary priorities) and dequeues, checking after every step:

- total occupancy never exceeds the configured capacity;
- accounting identity: enqueued == served + dropped-after-acceptance +
  still-buffered (per class and in total);
- every accepted packet is eventually either served or evicted, never
  duplicated or lost;
- the recovery queue always pops its highest-priority entry.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.scheduler import PacketClass, TAQScheduler
from repro.net.packet import DATA, SYN, Packet

CAPACITY = 8

CLASSES = st.sampled_from(list(PacketClass))
PRIORITIES = st.floats(min_value=0.0, max_value=100.0)


class SchedulerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.scheduler = TAQScheduler(
            CAPACITY, new_flow_capacity=3, recovery_service_share=0.3
        )
        self.next_id = 0
        self.buffered = {}          # id(packet) -> packet
        self.outcomes = {"accepted": 0, "served": 0, "evicted": 0, "rejected": 0}

    # ------------------------------------------------------------- rules
    @rule(klass=CLASSES, priority=PRIORITIES, syn=st.booleans())
    def enqueue(self, klass, priority, syn):
        kind = SYN if syn else DATA
        packet = Packet(self.next_id, kind, seq=self.next_id, size=500)
        self.next_id += 1
        accepted, evicted = self.scheduler.enqueue(
            packet, klass, priority=priority, connection_attempt=syn
        )
        if evicted is not None:
            assert id(evicted) in self.buffered, "evicted something not buffered"
            del self.buffered[id(evicted)]
            self.outcomes["evicted"] += 1
        if accepted:
            assert id(packet) not in self.buffered
            self.buffered[id(packet)] = packet
            self.outcomes["accepted"] += 1
        else:
            self.outcomes["rejected"] += 1
            assert evicted is None, "rejected arrival must not evict"

    @rule()
    def dequeue(self):
        packet = self.scheduler.dequeue()
        if packet is None:
            assert len(self.scheduler) == 0
            return
        assert id(packet) in self.buffered, "served a phantom packet"
        del self.buffered[id(packet)]
        self.outcomes["served"] += 1

    # -------------------------------------------------------- invariants
    @invariant()
    def occupancy_bounded(self):
        assert 0 <= len(self.scheduler) <= CAPACITY

    @invariant()
    def occupancy_matches_shadow(self):
        assert len(self.scheduler) == len(self.buffered)

    @invariant()
    def accounting_identity(self):
        assert (
            self.outcomes["accepted"]
            == self.outcomes["served"] + self.outcomes["evicted"] + len(self.buffered)
        )

    @invariant()
    def per_class_occupancy_sums(self):
        total = sum(self.scheduler.occupancy(c) for c in PacketClass)
        assert total == len(self.scheduler)


SchedulerMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestSchedulerStateful = SchedulerMachine.TestCase


def test_recovery_heap_pops_in_priority_order_randomized():
    import random

    rng = random.Random(9)
    scheduler = TAQScheduler(1000)
    priorities = [rng.uniform(0, 50) for _ in range(100)]
    for i, priority in enumerate(priorities):
        scheduler.enqueue(
            Packet(i, DATA, seq=i, size=500), PacketClass.RECOVERY, priority=priority
        )
    served_priorities = []
    while (packet := scheduler.dequeue()) is not None:
        served_priorities.append(priorities[packet.flow_id])
    assert served_priorities == sorted(priorities, reverse=True)
