"""Integration tests for the assembled TAQ queue discipline."""

import pytest

from repro.core import AdmissionController, TAQQueue
from repro.core.scheduler import PacketClass
from repro.net.packet import DATA, SYN, Packet


def data(flow=1, seq=0, pool=-1):
    return Packet(flow, DATA, seq=seq, size=500, pool_id=pool)


def syn(flow=1, pool=-1):
    return Packet(flow, SYN, pool_id=pool)


def test_for_link_sizes_buffer_like_paper():
    q = TAQQueue.for_link(1_000_000, rtt=0.2, pkt_size=500)
    assert q.capacity_pkts == 50
    assert q.tracker.default_epoch == 0.2


def test_basic_fifo_behaviour_for_one_flow():
    q = TAQQueue(capacity_pkts=10)
    for seq in range(3):
        assert q.enqueue(data(seq=seq), 0.0)
    out = [q.dequeue(0.0).seq for _ in range(3)]
    assert out == [0, 1, 2]


def test_retransmission_classified_into_recovery():
    q = TAQQueue(capacity_pkts=10)
    q.enqueue(data(seq=0), 0.0)
    q.enqueue(data(seq=1), 0.1)
    q.enqueue(data(seq=0), 1.0)  # retransmission
    assert q.scheduler.stats[PacketClass.RECOVERY].enqueued == 1


def test_syn_goes_to_new_flow_queue():
    q = TAQQueue(capacity_pkts=10)
    q.enqueue(syn(), 0.0)
    assert q.scheduler.stats[PacketClass.NEW_FLOW].enqueued == 1


def test_drop_feedback_reaches_tracker():
    q = TAQQueue(capacity_pkts=2)
    for seq in range(5):
        q.enqueue(data(seq=seq), 0.0)
    record = q.tracker.lookup(1)
    assert record.cumulative_drops >= 1
    assert q.dropped >= 1


def test_longer_silence_recovery_jumps_queue():
    q = TAQQueue(capacity_pkts=10, default_epoch=0.1)
    # Two flows transmit, then both retransmit — flow 2 after a longer
    # silence.  Flow 2's retransmission must be served first.
    q.enqueue(data(flow=1, seq=0), 0.0)
    q.enqueue(data(flow=2, seq=0), 0.0)
    q.dequeue(0.0)
    q.dequeue(0.0)
    q.enqueue(data(flow=1, seq=0), 1.0)   # flow 1 silent 1s
    q.enqueue(data(flow=2, seq=0), 5.0)   # flow 2 silent 5s
    first = q.dequeue(5.0)
    assert first.flow_id == 2


def test_admission_refuses_new_pool_syns_under_load():
    ctrl = AdmissionController(p_thresh=0.1, t_wait=100.0)
    q = TAQQueue(capacity_pkts=10, admission=ctrl)
    # Force a high measured loss rate.
    for i in range(200):
        ctrl.note_arrival(0.0)
        if i % 4 == 0:
            ctrl.note_drop(0.0)
    ctrl.note_arrival(2.5)
    assert not q.enqueue(syn(flow=9, pool=9), 3.0)
    assert q.admission_refusals == 1


def test_admission_disabled_accepts_all_pools():
    q = TAQQueue(capacity_pkts=10, admission=None)
    assert q.enqueue(syn(flow=9, pool=9), 0.0)


def test_reverse_tap_feeds_epoch_estimates():
    from repro.net.packet import ACK

    q = TAQQueue(capacity_pkts=10, default_epoch=1.0)
    q.enqueue(data(seq=0), 0.0)
    q.observe_reverse(Packet(1, ACK, ack_seq=1), 0.3)
    assert q.tracker.lookup(1).epoch_length == pytest.approx(0.3)


def test_loss_rate_accounting_with_evictions():
    q = TAQQueue(capacity_pkts=3)
    offered = 30
    for seq in range(offered):
        q.enqueue(data(seq=seq), seq * 0.001)
    assert q.enqueued + q.dropped == pytest.approx(offered)


def test_fair_share_ablation_disables_above_class():
    q = TAQQueue(capacity_pkts=50, classify_fair_share=False, default_epoch=0.5)
    q.fairshare.capacity_bps = 1000.0  # absurdly small: everything "above"
    t = 0.0
    for seq in range(40):
        q.enqueue(data(seq=seq), t)
        t += 0.05
    assert q.scheduler.stats[PacketClass.ABOVE_FAIR_SHARE].enqueued == 0
