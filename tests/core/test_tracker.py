"""Unit tests for the per-flow tracker."""

import pytest

from repro.core.states import FlowState
from repro.core.tracker import FlowTracker
from repro.net.packet import ACK, DATA, SYN, Packet


def data(flow=1, seq=0, size=500):
    return Packet(flow, DATA, seq=seq, size=size)


def make_tracker(epoch=1.0):
    return FlowTracker(default_epoch=epoch)


def test_new_flow_record_created_on_first_packet():
    tracker = make_tracker()
    tracker.observe_arrival(data(seq=0), 0.0)
    record = tracker.lookup(1)
    assert record is not None
    assert record.state == FlowState.SLOW_START


def test_retransmission_inferred_from_sequence():
    tracker = make_tracker()
    assert not tracker.observe_arrival(data(seq=0), 0.0)
    assert not tracker.observe_arrival(data(seq=1), 0.1)
    assert tracker.observe_arrival(data(seq=1), 0.2)   # repeat
    assert tracker.observe_arrival(data(seq=0), 0.3)   # older
    assert not tracker.observe_arrival(data(seq=2), 0.4)


def test_highest_seq_tracked():
    tracker = make_tracker()
    for seq in (0, 3, 1):
        tracker.observe_arrival(data(seq=seq), 0.0)
    assert tracker.lookup(1).highest_seq == 3


def test_epoch_rollover_shifts_counters():
    tracker = make_tracker(epoch=1.0)
    tracker.observe_arrival(data(seq=0), 0.0)
    tracker.observe_arrival(data(seq=1), 0.5)
    tracker.observe_arrival(data(seq=2), 1.2)  # rolls the epoch
    record = tracker.lookup(1)
    assert record.prev_new_packets == 2
    assert record.new_packets == 1


def test_silent_epochs_classify_timeout_states():
    tracker = make_tracker(epoch=1.0)
    tracker.observe_arrival(data(seq=0), 0.0)
    tracker.observe_drop(data(seq=1), 0.1)
    # Flow goes quiet for several epochs; state query rolls forward.
    assert tracker.state_of(1, 5.0) in (
        FlowState.TIMEOUT_SILENCE,
        FlowState.EXTENDED_SILENCE,
    )
    assert tracker.state_of(1, 9.0) == FlowState.EXTENDED_SILENCE


def test_drop_accounting():
    tracker = make_tracker()
    tracker.observe_arrival(data(seq=0), 0.0)
    tracker.observe_drop(data(seq=1), 0.1)
    record = tracker.lookup(1)
    assert record.drops == 1
    assert record.cumulative_drops == 1
    assert record.outstanding_drops >= 1


def test_observed_retransmission_reduces_outstanding_drops():
    tracker = make_tracker(epoch=10.0)
    tracker.observe_arrival(data(seq=0), 0.0)
    tracker.observe_arrival(data(seq=1), 0.1)
    tracker.observe_drop(data(seq=1), 0.1)
    before = tracker.lookup(1).outstanding_drops
    tracker.observe_arrival(data(seq=1), 0.5)  # the retransmission
    assert tracker.lookup(1).outstanding_drops == before - 1


def test_silence_seconds():
    tracker = make_tracker()
    tracker.observe_arrival(data(seq=0), 1.0)
    assert tracker.lookup(1).silence_seconds(4.0) == pytest.approx(3.0)


def test_syn_feeds_epoch_estimator():
    tracker = make_tracker(epoch=1.0)
    tracker.observe_arrival(Packet(1, SYN), 0.0)
    tracker.observe_arrival(data(seq=0), 0.4)
    assert tracker.lookup(1).epoch_length == pytest.approx(0.4)


def test_ack_observation_feeds_estimator():
    tracker = make_tracker(epoch=1.0)
    tracker.observe_arrival(data(seq=0), 0.0)
    tracker.observe_ack(Packet(1, ACK, ack_seq=1), 0.25)
    assert tracker.lookup(1).epoch_length == pytest.approx(0.25)


def test_active_flow_census():
    tracker = make_tracker(epoch=0.1)
    tracker.observe_arrival(data(flow=1, seq=0), 0.0)
    tracker.observe_arrival(data(flow=2, seq=0), 9.8)
    # Flow 1 has been idle for ~100 epochs; only flow 2 is active.
    assert tracker.active_flows(10.0) == 1


def test_gc_evicts_stale_flows():
    tracker = FlowTracker(default_epoch=0.1, idle_timeout=5.0)
    tracker.observe_arrival(data(flow=1, seq=0), 0.0)
    tracker.observe_arrival(data(flow=2, seq=0), 20.0)  # triggers GC
    assert tracker.lookup(1) is None
    assert tracker.lookup(2) is not None


def test_rate_estimate_tracks_throughput():
    tracker = make_tracker(epoch=1.0)
    # 2 x 500B per 1s epoch = 8 kbps steady.
    t = 0.0
    for epoch in range(8):
        for j in range(2):
            tracker.observe_arrival(data(seq=epoch * 2 + j, size=500), t)
            t += 0.4
        t = (epoch + 1) * 1.0
    record = tracker.lookup(1)
    record.roll_epochs(t)
    assert record.rate_bps == pytest.approx(8000, rel=0.2)


def test_dropped_bytes_removed_from_rate_basis():
    tracker = make_tracker(epoch=1.0)
    tracker.observe_arrival(data(seq=0), 0.0)
    tracker.observe_drop(data(seq=0), 0.0)
    assert tracker.lookup(1).bytes_forwarded == 0


def test_very_long_idle_gap_does_not_spin():
    tracker = make_tracker(epoch=0.01)
    tracker.observe_arrival(data(seq=0), 0.0)
    # 1e6 epochs later; roll_epochs must not iterate a million times.
    tracker.observe_arrival(data(seq=1), 10_000.0)
    assert tracker.lookup(1).new_packets >= 1
