"""Stateful property tests of the flow tracker's invariants.

Random sequences of arrivals (fresh and repeated sequence numbers),
drops, ACK observations and time advances must never violate:

- retransmission inference: a packet is flagged iff its sequence number
  does not exceed the highest previously seen;
- counters are non-negative and epoch rollovers conserve them;
- the state is always a legal FlowState and silent flows eventually
  leave NORMAL/SLOW_START;
- epoch estimates stay within the estimator's clamps.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.states import FlowState
from repro.core.tracker import FlowTracker
from repro.net.packet import ACK, DATA, Packet


class TrackerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tracker = FlowTracker(default_epoch=0.5)
        self.now = 0.0
        self.highest = {}  # flow -> highest seq seen so far (shadow)
        self.next_fresh = {}

    def _packet(self, flow, seq):
        return Packet(flow, DATA, seq=seq, size=500)

    @rule(flow=st.integers(min_value=1, max_value=3))
    def fresh_arrival(self, flow):
        seq = self.next_fresh.get(flow, 0)
        self.next_fresh[flow] = seq + 1
        flagged = self.tracker.observe_arrival(self._packet(flow, seq), self.now)
        expected = seq <= self.highest.get(flow, -1)
        assert flagged == expected
        self.highest[flow] = max(self.highest.get(flow, -1), seq)

    @rule(flow=st.integers(min_value=1, max_value=3),
          back=st.integers(min_value=0, max_value=5))
    def repeated_arrival(self, flow, back):
        highest = self.highest.get(flow)
        if highest is None:
            return
        seq = max(0, highest - back)
        flagged = self.tracker.observe_arrival(self._packet(flow, seq), self.now)
        assert flagged  # seq <= highest: must be inferred as retransmission

    @rule(flow=st.integers(min_value=1, max_value=3))
    def drop(self, flow):
        record = self.tracker.lookup(flow)
        before = record.cumulative_drops if record else 0
        self.tracker.observe_drop(self._packet(flow, 0), self.now)
        after = self.tracker.lookup(flow).cumulative_drops
        assert after == before + 1

    @rule(flow=st.integers(min_value=1, max_value=3))
    def ack(self, flow):
        record = self.tracker.lookup(flow)
        self.tracker.observe_ack(Packet(flow, ACK, ack_seq=5), self.now)
        if record is not None:
            assert record.epoch_length > 0

    @rule(dt=st.floats(min_value=0.01, max_value=5.0))
    def advance(self, dt):
        self.now += dt

    @rule(flow=st.integers(min_value=1, max_value=3))
    def query_state(self, flow):
        state = self.tracker.state_of(flow, self.now)
        assert isinstance(state, FlowState)

    # -------------------------------------------------------- invariants
    @invariant()
    def counters_nonnegative(self):
        for record in self.tracker.flows.values():
            assert record.new_packets >= 0
            assert record.retransmissions >= 0
            assert record.drops >= 0
            assert record.outstanding_drops >= 0
            assert record.bytes_forwarded >= 0
            assert record.silent_epochs >= 0

    @invariant()
    def epoch_estimates_clamped(self):
        for record in self.tracker.flows.values():
            estimator = record.estimator
            assert estimator.min_epoch <= record.epoch_length <= estimator.max_epoch

    @invariant()
    def epoch_window_tracks_time(self):
        for record in self.tracker.flows.values():
            assert record.epoch_start <= self.now + 1e-9


TrackerMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=50, deadline=None
)
TestTrackerStateful = TrackerMachine.TestCase


def test_long_silence_always_leaves_active_states():
    tracker = FlowTracker(default_epoch=0.1)
    tracker.observe_arrival(Packet(1, DATA, seq=0, size=500), 0.0)
    tracker.observe_drop(Packet(1, DATA, seq=1, size=500), 0.05)
    state = tracker.state_of(1, 10.0)
    assert state in (FlowState.TIMEOUT_SILENCE, FlowState.EXTENDED_SILENCE)
