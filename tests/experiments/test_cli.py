"""Tests for the taq-experiments command-line entry point."""

from repro.experiments import cli


def test_list_prints_every_experiment(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for key in cli.EXPERIMENTS:
        assert key in out
    assert "tipping-point" in out


def test_tipping_point_command(capsys):
    assert cli.main(["tipping-point"]) == 0
    out = capsys.readouterr().out
    assert "partial model tipping point" in out
    assert "0.1" in out


def test_unknown_experiment_errors(capsys):
    assert cli.main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_experiment_with_seed_override(capsys, monkeypatch):
    # Shrink fig02 so the CLI test stays fast.
    from repro.experiments import fig02_fairness_droptail as fig2

    tiny = fig2.Config(
        capacities_bps=(400_000.0,), fair_shares_bps=(40_000.0,), duration=20.0
    )
    monkeypatch.setattr(fig2, "Config", lambda: tiny)
    assert cli.main(["fig02", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out
    assert tiny.seed == 9


def test_csv_and_chart_flags(capsys, monkeypatch, tmp_path):
    from repro.experiments import fig02_fairness_droptail as fig2

    tiny = fig2.Config(
        capacities_bps=(400_000.0,),
        fair_shares_bps=(20_000.0, 40_000.0),
        duration=20.0,
    )
    monkeypatch.setattr(fig2, "Config", lambda: tiny)
    csv_path = tmp_path / "fig02.csv"
    assert cli.main(["fig02", "--csv", str(csv_path), "--chart"]) == 0
    out = capsys.readouterr().out
    assert "csv written" in out
    assert "fair share (bps)" in out  # the chart rendered
    content = csv_path.read_text()
    assert content.startswith("capacity_kbps")
    assert content.count("\n") == 3  # header + 2 rows


def test_chart_flag_on_chartless_experiment(capsys, monkeypatch):
    from repro.experiments import fig09_flow_evolution as fig9

    tiny = fig9.Config(n_flows=10, duration=20.0)
    monkeypatch.setattr(fig9, "Config", lambda: tiny)
    assert cli.main(["fig09", "--chart"]) == 0
    assert "no chart rendering" in capsys.readouterr().out


def test_new_experiments_registered():
    for key in ("variants", "padhye", "overlay"):
        assert key in cli.EXPERIMENTS
