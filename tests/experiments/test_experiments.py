"""Smoke + unit tests of each experiment module at tiny scale.

The benchmarks assert the *shapes* at realistic scale; these tests
assert the machinery — configs, result containers, derived metrics —
at scales that run in well under a second each.
"""

import pytest

from repro.experiments import (
    fig01_download_times as fig1,
    fig02_fairness_droptail as fig2,
    fig03_buffer_tradeoff as fig3,
    fig06_model_validation as fig6,
    fig08_fairness_taq as fig8,
    fig09_flow_evolution as fig9,
    fig10_short_flows as fig10,
    fig11_testbed as fig11,
    fig12_admission_cdf as fig12,
    hang_times,
)


def test_fig02_tiny_run_and_table():
    config = fig2.Config(
        capacities_bps=(400_000.0,), fair_shares_bps=(20_000.0,), duration=25.0
    )
    result = fig2.run(config)
    assert len(result.points) == 1
    text = str(result)
    assert "Fig 2" in text


def test_fig02_paper_config_is_larger():
    assert len(fig2.Config.paper().fair_shares_bps) > len(fig2.Config().fair_shares_bps)
    assert fig2.Config.paper().duration > fig2.Config().duration


def test_fig03_tiny_run_required_buffer():
    config = fig3.Config(
        fair_shares_pkts_per_rtt=(1.0,), buffer_rtts=(1.0, 2.0), duration=25.0
    )
    result = fig3.run(config)
    assert set(result.jfi) == {(1.0, 1.0), (1.0, 2.0)}
    # required_buffer of an unreachable target is None.
    assert result.required_buffer(1.0, 2.0) is None
    assert "Fig 3" in str(result)


def test_fig06_census_from_rounds_basic():
    rounds = {1: [(0.0, 0.2, 2), (1.0, 1.2, 3)]}
    epochs = {1: 0.2}
    census = fig6.census_from_rounds(rounds, epochs, 0.0, 1.4)
    # One 2-round, one 3-round, plus 4 silent epochs [0.2..1.0).
    assert census[2] == pytest.approx(1 / 6)
    assert census[3] == pytest.approx(1 / 6)
    assert census[0] == pytest.approx(4 / 6)


def test_fig06_census_excludes_big_windows():
    rounds = {1: [(0.0, 0.2, 12)]}
    census = fig6.census_from_rounds(rounds, {1: 0.2}, 0.0, 0.2, wmax=6)
    assert sum(census.values()) == 0.0  # the only round was excluded


def test_fig06_census_flow_with_no_rounds_is_all_silent():
    census = fig6.census_from_rounds({}, {1: 0.5}, 0.0, 5.0)
    assert census[0] == pytest.approx(1.0)


def test_fig06_tiny_run():
    config = fig6.Config(capacities_bps=(400_000.0,), flow_counts=(40,), duration=40.0, warmup=10.0)
    result = fig6.run(config)
    point = result.points[0]
    assert 0.0 <= point.loss_rate < 1.0
    assert abs(sum(point.sim_census.values()) - 1.0) < 1e-6
    assert point.l1_distance("partial") >= 0.0
    assert "Fig 6" in str(result)


def test_fig08_includes_droptail_baseline():
    config = fig8.Config(
        capacities_bps=(400_000.0,), fair_shares_bps=(20_000.0,), duration=25.0
    )
    result = fig8.run(config)
    assert len(result.baseline) == 1
    assert "Fig 8" in str(result)


def test_fig09_tiny_run():
    result = fig9.run(fig9.Config(n_flows=30, duration=40.0))
    assert set(result.means) == {"droptail", "taq"}
    for means in result.means.values():
        assert means["maintained"] >= 0
    assert "Fig 9" in str(result)


def test_fig10_pearson():
    assert fig10.pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert fig10.pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)
    assert fig10.pearson([1], [1]) == 0.0
    assert fig10.pearson([1, 1, 1], [1, 2, 3]) == 0.0


def test_fig10_tiny_run():
    config = fig10.Config(
        n_long_flows=20, short_lengths=(2, 10), duration=60.0, queue_kinds=("taq",)
    )
    result = fig10.run(config)
    assert result.completion_fraction("taq") == 1.0
    assert "Fig 10" in str(result)


def test_fig11_tiny_run():
    config = fig11.Config(
        capacities_bps=(600_000.0,), fair_shares_bps=(20_000.0,), duration=30.0
    )
    result = fig11.run(config)
    assert result.jain("taq", 600_000.0, 20_000.0) > 0
    with pytest.raises(KeyError):
        result.jain("taq", 1.0, 1.0)
    assert "Fig 11" in str(result)


def test_fig12_tiny_run():
    config = fig12.Config(
        n_users=6, objects_per_user=3, duration=60.0, arrival_window=10.0,
        queue_kinds=("droptail", "taq+ac"),
    )
    result = fig12.run(config)
    assert ("droptail", "small") in result.bands
    assert ("taq+ac", "large") in result.bands
    assert "Fig 12" in str(result)


def test_fig01_tiny_run():
    result = fig1.run(fig1.Config(n_clients=8, duration=60.0))
    assert result.completed > 0
    assert result.spread() >= 0.0
    assert "Fig 1" in str(result)


def test_hangs_tiny_run():
    config = hang_times.Config(
        user_counts=(8,), duration=60.0, objects_per_user=6,
        queue_kinds=("droptail",),
    )
    result = hang_times.run(config)
    point = result.point("droptail", 8)
    assert 0.0 <= point.fraction_over[5.0] <= 1.0
    with pytest.raises(KeyError):
        result.point("taq", 8)
    assert "hangs" in str(result)
