"""Tiny-scale tests of the extension experiments (variants, overlay,
Padhye comparison)."""

import pytest

from repro.experiments import (
    overlay_deployment as ovr,
    padhye_comparison as pad,
    variants as var,
)


def test_variants_tiny_run_and_accessors():
    config = var.Config(
        n_flows=20, duration=30.0,
        transports=("newreno", "tfrc"), queues=("droptail",),
    )
    result = var.run(config)
    assert len(result.points) == 2
    assert result.jain("newreno", "droptail") > 0
    with pytest.raises(KeyError):
        result.jain("vegas", "droptail")
    assert result.taq_reference > 0
    assert "variants" in str(result) or "transport" in str(result)


def test_variants_tfrc_has_no_timeout_counter():
    config = var.Config(
        n_flows=10, duration=20.0, transports=("tfrc",), queues=("droptail",),
    )
    result = var.run(config)
    assert result.points[0].timeouts == -1


def test_overlay_tiny_run_modes():
    config = ovr.Config(n_flows=15, duration=30.0, modes=("clean", "overlay"))
    result = ovr.run(config)
    assert set(result.modes) == {"clean", "overlay"}
    assert result.modes["clean"].end_to_end_loss == 0.0
    assert result.modes["overlay"].tunnel_retransmissions >= 0
    assert "deployment" in str(result)


def test_padhye_tiny_run_and_errors():
    config = pad.Config(flow_counts=(20,), duration=40.0, warmup=10.0)
    result = pad.run(config)
    point = result.points[0]
    assert point.simulated_pkts_per_rtt > 0
    assert point.padhye_pkts_per_rtt > 0
    assert point.error("padhye") >= 0
    assert point.error("partial_model") >= 0
    assert "Padhye" in str(result) or "padhye" in str(result)


def test_padhye_error_handles_zero_simulated():
    point = pad.ComparisonPoint(
        n_flows=1, loss_rate=0.1, simulated_pkts_per_rtt=0.0,
        padhye_pkts_per_rtt=1.0, partial_model_pkts_per_rtt=1.0,
        full_model_pkts_per_rtt=1.0,
    )
    assert point.error("padhye") == float("inf")


def test_spr_tiny_run():
    from repro.experiments import spr_endhost as spr

    config = spr.Config(n_flows=20, duration=30.0,
                        scenarios=("all-newreno", "mixed"))
    result = spr.run(config)
    assert set(result.scenarios) == {"all-newreno", "mixed"}
    mixed = result.scenarios["mixed"]
    assert mixed.spr_advantage > 0
    assert "SPR" in str(result)


def test_table_csv_round_trip():
    config = var.Config(
        n_flows=10, duration=20.0, transports=("newreno",), queues=("droptail",),
    )
    result = var.run(config)
    csv_text = result.table().to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0].startswith("transport,queue")
    assert len(lines) == 3  # header + 1 combination + TAQ reference row
