"""Golden-equivalence: every figure is bit-identical to the seed.

The CSVs in ``goldens/`` were captured from each experiment's
``run(Config())`` *before* the declarative build plane existed.  These
tests re-run the same defaults through the refactored construction path
and require byte-for-byte identical tables — the hard invariant of the
build-plane refactor.  A legitimate behaviour change must re-capture
the golden in the same commit and say why.

Every test is marked ``slow`` except a fast subset (fig09, pool, rttf,
spr, variants-free subset is still tens of seconds); CI's
golden-equivalence job runs the fast subset, the full set runs on
demand: ``pytest tests/experiments/test_goldens.py --run-slow``.
"""

from __future__ import annotations

import importlib
import os

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: golden file stem -> experiment module.  Must mirror the CLI registry.
EXPERIMENTS = {
    "fig01": "repro.experiments.fig01_download_times",
    "fig02": "repro.experiments.fig02_fairness_droptail",
    "fig03": "repro.experiments.fig03_buffer_tradeoff",
    "fig06": "repro.experiments.fig06_model_validation",
    "fig08": "repro.experiments.fig08_fairness_taq",
    "fig09": "repro.experiments.fig09_flow_evolution",
    "fig10": "repro.experiments.fig10_short_flows",
    "fig11": "repro.experiments.fig11_testbed",
    "fig12": "repro.experiments.fig12_admission_cdf",
    "hangs": "repro.experiments.hang_times",
    "overlay": "repro.experiments.overlay_deployment",
    "padhye": "repro.experiments.padhye_comparison",
    "pool": "repro.experiments.pool_fairness",
    "rttf": "repro.experiments.rtt_fairness",
    "spr": "repro.experiments.spr_endhost",
    "variants": "repro.experiments.variants",
}

#: Quick experiments safe for every CI run (~60 s total).  The rest
#: carry the ``slow`` marker.
FAST = ("fig09", "fig10", "overlay", "pool", "rttf")


def _golden_params():
    params = []
    for name in sorted(EXPERIMENTS):
        marks = () if name in FAST else (pytest.mark.slow,)
        params.append(pytest.param(name, id=name, marks=marks))
    return params


@pytest.mark.parametrize("name", _golden_params())
def test_experiment_matches_seed_golden(name):
    module = importlib.import_module(EXPERIMENTS[name])
    result = module.run(module.Config())
    # csv.writer emits \r\n; the goldens are stored LF — normalize the
    # line endings, nothing else.
    produced = result.table().to_csv().replace("\r\n", "\n")
    with open(os.path.join(GOLDEN_DIR, f"{name}.csv"), encoding="utf-8") as handle:
        golden = handle.read().replace("\r\n", "\n")
    assert produced == golden, (
        f"{name} diverged from its seed golden — the build-plane refactor "
        f"must be bit-identical at default configs"
    )


def test_every_golden_has_a_test():
    stems = {os.path.splitext(f)[0] for f in os.listdir(GOLDEN_DIR)}
    assert stems == set(EXPERIMENTS)
