"""Unit tests for the experiment plumbing (runner, sweeps, tables)."""

import pytest

from repro.core import TAQQueue
from repro.experiments.runner import TableResult, build_dumbbell, make_queue
from repro.experiments.sweeps import flows_for_fair_share, run_sweep_point
from repro.queues import DropTailQueue, REDQueue, SFQQueue
from repro.sim.simulator import Simulator


def test_make_queue_all_kinds():
    sim = Simulator()
    assert isinstance(make_queue("droptail", sim, 1e6, 0.2), DropTailQueue)
    assert isinstance(make_queue("red", sim, 1e6, 0.2), REDQueue)
    assert isinstance(make_queue("sfq", sim, 1e6, 0.2), SFQQueue)
    assert isinstance(make_queue("taq", sim, 1e6, 0.2), TAQQueue)
    taq_ac = make_queue("taq+ac", sim, 1e6, 0.2)
    assert isinstance(taq_ac, TAQQueue)
    assert taq_ac.admission is not None


def test_make_queue_unknown_kind():
    sim = Simulator()
    with pytest.raises(ValueError):
        make_queue("cake", sim, 1e6, 0.2)


def test_make_queue_buffer_sizing():
    sim = Simulator()
    queue = make_queue("droptail", sim, 1_000_000, 0.2, buffer_rtts=2.0)
    assert queue.capacity_pkts == 100


def test_build_dumbbell_wires_taq_reverse_tap():
    bench = build_dumbbell("taq", 1_000_000, rtt=0.2)
    assert len(bench.bell.reverse._taps) == 1


def test_build_dumbbell_wires_collector():
    bench = build_dumbbell("droptail", 1_000_000, rtt=0.2)
    assert len(bench.bell.forward._delivery_taps) == 1


def test_flows_for_fair_share():
    assert flows_for_fair_share(1_000_000, 10_000) == 100
    assert flows_for_fair_share(1_000, 1e9) == 2  # floor of 2 flows


def test_run_sweep_point_smoke():
    point = run_sweep_point("droptail", 400_000, 20_000, duration=30.0)
    assert point.n_flows == 20
    assert 0.0 < point.short_term_jain <= 1.0
    assert point.utilization > 0.5
    assert point.packets_per_rtt == pytest.approx(1.0)


def test_table_result_rendering_and_columns():
    table = TableResult("Title", headers=("a", "b"))
    table.add(1, 2.5)
    table.add(3, 4.0)
    table.notes.append("a note")
    text = str(table)
    assert "Title" in text
    assert "# a note" in text
    assert table.column("a") == [1, 3]


def test_table_result_rejects_ragged_rows():
    table = TableResult("T", headers=("a", "b"))
    with pytest.raises(ValueError):
        table.add(1)
