"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.experiments.scenario import (
    ScenarioError,
    run_scenario,
    run_scenario_file,
)


def base_document(**overrides):
    document = {
        "name": "test",
        "seed": 3,
        "duration": 30,
        "topology": {"type": "dumbbell", "capacity_bps": 600_000, "rtt": 0.2},
        "queue": {"kind": "droptail"},
        "workloads": [{"type": "bulk", "n_flows": 20}],
    }
    document.update(overrides)
    return document


def test_bulk_scenario_produces_metrics():
    outcome = run_scenario(base_document())
    assert outcome.name == "test"
    assert 0 < outcome.short_term_jain <= 1
    assert outcome.utilization > 0.5
    assert outcome.timeouts >= 0
    assert "Scenario: test" in str(outcome)


def test_taq_scenario_wires_reverse_tap():
    outcome = run_scenario(base_document(queue={"kind": "taq"}))
    assert outcome.short_term_jain > 0


def test_web_workload_reports_download_stats():
    document = base_document(
        workloads=[{"type": "web", "n_users": 4, "objects_per_user": 3,
                    "object_bytes": 5_000, "start_window": 2.0}],
        duration=60,
    )
    outcome = run_scenario(document)
    assert outcome.extras["web_objects_completed"] > 0
    assert outcome.extras["web_median_download_s"] > 0


def test_short_flows_counted_as_transfers():
    document = base_document(
        workloads=[
            {"type": "bulk", "n_flows": 10},
            {"type": "short", "lengths": [2, 5], "start_time": 5.0},
        ],
        duration=60,
    )
    outcome = run_scenario(document)
    assert outcome.total_transfers == 2
    assert outcome.completed_transfers == 2


def test_overlay_topology():
    document = base_document(
        topology={"type": "overlay", "capacity_bps": 600_000, "rtt": 0.2,
                  "mode": "raw", "underlay_loss": 0.1},
        workloads=[{"type": "bulk", "n_flows": 10}],
    )
    outcome = run_scenario(document)
    assert outcome.utilization > 0.3


def test_testbed_topology():
    document = base_document(
        topology={"type": "testbed", "capacity_bps": 600_000, "rtt": 0.2},
    )
    outcome = run_scenario(document)
    assert outcome.utilization > 0.5


def test_validation_errors():
    with pytest.raises(ScenarioError):
        run_scenario({"duration": 10})  # no topology
    with pytest.raises(ScenarioError):
        run_scenario(base_document(workloads=[]))
    with pytest.raises(ScenarioError):
        run_scenario(base_document(workloads=[{"type": "quic"}]))
    with pytest.raises(ScenarioError):
        run_scenario(base_document(topology={"type": "ring", "capacity_bps": 1}))
    with pytest.raises(ScenarioError):
        run_scenario(base_document(workloads=[{"type": "bulk"}]))  # n_flows


def test_scenario_file_round_trip(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(base_document()))
    outcome = run_scenario_file(str(path))
    assert outcome.name == "test"


def test_scenario_file_invalid_json(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ScenarioError):
        run_scenario_file(str(path))


def test_shipped_example_scenarios_parse_and_run_small():
    import os

    root = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "scenarios")
    for name in os.listdir(root):
        with open(os.path.join(root, name)) as handle:
            document = json.load(handle)
        document["duration"] = 15  # shrink for test speed
        for workload in document["workloads"]:
            if "n_flows" in workload:
                workload["n_flows"] = min(10, workload["n_flows"])
            if "n_clients" in workload:
                workload["n_clients"] = min(8, workload["n_clients"])
            if "n_users" in workload:
                workload["n_users"] = min(4, workload["n_users"])
                # web-bands spreads arrivals over arrival_window;
                # plain web sessions use start_window.
                if workload["type"] == "web-bands":
                    workload["arrival_window"] = 2.0
                else:
                    workload["start_window"] = 2.0
        outcome = run_scenario(document)
        assert outcome.duration == 15


def test_cli_scenario_command(tmp_path, capsys):
    from repro.experiments import cli

    path = tmp_path / "s.json"
    path.write_text(json.dumps(base_document()))
    assert cli.main(["scenario", str(path)]) == 0
    assert "Scenario: test" in capsys.readouterr().out
    assert cli.main(["scenario"]) == 2
    assert cli.main(["scenario", str(tmp_path / "missing.json")]) == 2
