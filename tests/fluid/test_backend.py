"""The fluid entry of the backend registry: spec plumbing and domain
errors.

Covers the :class:`BackendSpec` document round-trip (and the guarantee
that packet-default documents never grow a ``backend`` key — goldens
and cache keys must stay byte-identical), the build-time rejection of
everything outside the fluid validity domain, and the reduction of a
fluid run to the standard scenario metric set.
"""

import pytest

from repro.build import BackendSpec, ScenarioSpec, SpecError, build_simulation
from repro.fluid.backend import BuiltFluid


def document(**overrides):
    doc = {
        "name": "fluid-backend-test",
        "seed": 1,
        "duration": 20,
        "topology": {
            "type": "dumbbell",
            "capacity_bps": 600_000,
            "rtt": 0.2,
            "pkt_size": 200,
        },
        "queue": {"kind": "taq", "buffer_rtts": 1.0},
        "workloads": [{"type": "bulk", "n_flows": 16}],
        "backend": {"kind": "fluid"},
    }
    doc.update(overrides)
    return doc


def test_backend_spec_round_trip():
    spec = ScenarioSpec.from_document(document(backend={"kind": "fluid", "wmax": 12}))
    assert spec.backend.kind == "fluid"
    assert spec.backend.params == {"wmax": 12}
    assert spec.to_document()["backend"] == {"kind": "fluid", "wmax": 12}
    again = ScenarioSpec.from_document(spec.to_document())
    assert again.backend == spec.backend


def test_packet_default_document_has_no_backend_key():
    doc = document()
    del doc["backend"]
    spec = ScenarioSpec.from_document(doc)
    assert spec.backend == BackendSpec()
    assert spec.backend.is_default
    assert "backend" not in spec.to_document()


def test_unknown_backend_kind_rejected():
    with pytest.raises(SpecError, match="backend"):
        ScenarioSpec.from_document(document(backend={"kind": "quantum"}))


def test_unknown_backend_param_rejected():
    with pytest.raises(SpecError, match="nope"):
        ScenarioSpec.from_document(document(backend={"kind": "fluid", "nope": 1}))


def test_build_returns_built_fluid():
    built = build_simulation(ScenarioSpec.from_document(document()))
    assert isinstance(built, BuiltFluid)
    assert built.backend == "fluid"


def test_non_bulk_workload_rejected():
    doc = document(
        workloads=[{"type": "web", "n_users": 4, "objects_per_user": 2}]
    )
    with pytest.raises(SpecError, match="bulk"):
        build_simulation(ScenarioSpec.from_document(doc))


def test_sized_transfers_rejected():
    doc = document(workloads=[{"type": "bulk", "n_flows": 4, "size_segments": 100}])
    with pytest.raises(SpecError, match="size_segments"):
        build_simulation(ScenarioSpec.from_document(doc))


def test_unsupported_queue_kind_rejected():
    doc = document(queue={"kind": "sfq", "buffer_rtts": 1.0})
    with pytest.raises(SpecError, match="no drop model"):
        build_simulation(ScenarioSpec.from_document(doc))


def test_non_dumbbell_topology_rejected():
    doc = document(
        topology={
            "type": "overlay",
            "capacity_bps": 600_000,
            "rtt": 0.2,
            "pkt_size": 200,
            "underlay_loss": 0.01,
        }
    )
    with pytest.raises(SpecError, match="dumbbell"):
        build_simulation(ScenarioSpec.from_document(doc))


def test_ignored_params_are_recorded():
    doc = document(
        workloads=[{"type": "bulk", "n_flows": 8, "start_window": 2.0}]
    )
    built = build_simulation(ScenarioSpec.from_document(doc))
    assert built.ignored_params == {"workloads[0].start_window": 2.0}
    outcome = built.scenario_outcome()
    assert outcome.extras["ignored_params"] == built.ignored_params


def test_scenario_outcome_carries_fluid_metrics():
    built = build_simulation(ScenarioSpec.from_document(document()))
    outcome = built.scenario_outcome()
    assert outcome.extras["backend"] == "fluid"
    assert 0.0 <= outcome.loss_rate <= 1.0
    assert 0.0 < outcome.utilization <= 1.0 + 1e-9
    assert 0.0 < outcome.short_term_jain <= 1.0
    assert outcome.extras["mean_queue_pkts"] >= 0.0
    assert outcome.extras["queue_p99_pkts"] >= outcome.extras["mean_queue_pkts"]


def test_admission_control_parks_flows_under_overload():
    doc = document(
        queue={"kind": "taq+ac", "buffer_rtts": 1.0, "p_thresh": 0.02},
        workloads=[{"type": "bulk", "n_flows": 200}],
    )
    built = build_simulation(ScenarioSpec.from_document(doc))
    outcome = built.scenario_outcome()
    refused = outcome.extras.get("admission_refusals", 0)
    assert refused > 0
    # Parked flows drag population fairness down: they are members with
    # zero goodput.
    assert outcome.long_term_jain < 0.9


def test_rtt_buckets_spread_access_rtts():
    built = build_simulation(
        ScenarioSpec.from_document(
            document(backend={"kind": "fluid", "rtt_buckets": 4})
        )
    )
    rtts = sorted(c.rtt for c in built.model.classes)
    assert len(rtts) == 4
    assert rtts[0] != rtts[-1]
    built1 = build_simulation(
        ScenarioSpec.from_document(
            document(backend={"kind": "fluid", "rtt_buckets": 1})
        )
    )
    assert len(built1.model.classes) == 1
