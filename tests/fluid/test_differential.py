"""The differential campaign: fluid vs packet vs analytic model.

The fluid backend earns its place by agreeing with the packet
simulator where both can run — N in {4, 16, 64} bulk flows straddling
the paper's small-packet boundary, under DropTail, RED and the TAQ
approximation — and by reproducing the partial-model stationary
distribution when the loss probability is pinned (the analytic
cross-check that needs no packet run at all).

The N = 16 row of the grid runs in the default suite; the full grid is
marked ``slow`` and runs in the CI ``fluid`` job (and locally with
``--run-slow``).
"""

import numpy as np
import pytest

from repro.build import ScenarioSpec
from repro.check.differential import (
    BackendTolerances,
    compare_backends,
    respec_backend,
)
from repro.fluid import FluidClass, FluidModel, pinned
from repro.model import (
    packets_per_state,
    state_layout,
    stationary_distribution,
    transition_matrix,
)

DISCIPLINES = ("droptail", "red", "taq")


def grid_document(queue_kind: str, n_flows: int) -> dict:
    """The calibration shape: paper's small-packet bottleneck (600 kbps,
    200-byte packets, 200 ms RTT) under ``n_flows`` bulk senders."""
    return {
        "name": f"diff-{queue_kind}-{n_flows}",
        "seed": 1,
        "duration": 120,
        "topology": {
            "type": "dumbbell",
            "capacity_bps": 600_000,
            "rtt": 0.2,
            "pkt_size": 200,
        },
        "queue": {"kind": queue_kind, "buffer_rtts": 1.0},
        "workloads": [{"type": "bulk", "n_flows": n_flows}],
    }


def assert_backends_agree(queue_kind: str, n_flows: int) -> None:
    spec = ScenarioSpec.from_document(grid_document(queue_kind, n_flows))
    report = compare_backends(spec)
    assert report.ok, "; ".join(
        f"{r.name}: {r.detail}" for r in report.relations if not r.holds
    )


@pytest.mark.parametrize("queue_kind", DISCIPLINES)
def test_backends_agree_n16(queue_kind):
    assert_backends_agree(queue_kind, 16)


@pytest.mark.slow
@pytest.mark.parametrize("queue_kind", DISCIPLINES)
@pytest.mark.parametrize("n_flows", (4, 64))
def test_backends_agree_full_grid(queue_kind, n_flows):
    assert_backends_agree(queue_kind, n_flows)


def test_respec_backend_round_trip():
    spec = ScenarioSpec.from_document(grid_document("red", 8))
    fluid = respec_backend(spec, "fluid", rtt_buckets=2)
    assert fluid.backend.kind == "fluid"
    assert fluid.backend.params == {"rtt_buckets": 2}
    back = respec_backend(fluid, "packet")
    assert back.backend.kind == "packet"
    assert "backend" not in back.to_document()


def test_tolerance_band_is_max_of_abs_and_rel():
    tol = BackendTolerances(loss_abs=0.01, loss_rel=0.5)
    assert tol.close("loss", 0.004, 0.012)  # inside abs band
    assert tol.close("loss", 0.10, 0.14)  # inside rel band
    assert not tol.close("loss", 0.10, 0.22)  # outside both


def test_fluid_matches_model_stationary_distribution():
    """With the loss pinned, the integrator must converge to the
    partial-model chain's stationary distribution — the uniformized
    update shares the chain's fixed point by construction."""
    p = 0.08
    wmax = 8
    model = FluidModel(
        [FluidClass(name="c", n_flows=100.0, rtt=0.2)],
        capacity_pps=1e9,  # empty queue: R stays at the class RTT
        buffer_pkts=1e9,
        discipline=pinned(p),
        wmax=wmax,
        dt=0.01,
    )
    model.run(400.0)
    histogram = model.h[0] / model.h[0].sum()
    pi = stationary_distribution(transition_matrix(p, wmax=wmax))
    assert np.allclose(histogram, pi, atol=1e-3)
    # And the mean window agrees through the same reward vector.
    sent = np.asarray(packets_per_state(wmax), dtype=float)
    assert histogram @ sent == pytest.approx(pi @ sent, rel=1e-3)
    assert len(pi) == len(state_layout(wmax))
