"""The fuzzer's fluid arm: sampling, fault injection, shrinking.

The campaign routes a fixed fraction of cases through the fluid
backend; ``run_case`` must dispatch on the built object and surface the
integrator's own conservation monitors through the same
:class:`Violation` type the packet monitors use — which is what lets
the greedy shrinker minimize fluid repros unchanged.
"""

import random

from repro.check.fuzz import (
    FLUID_QUEUE_KINDS,
    run_case,
    sample_document,
    shrink,
)


def leak_document(n_flows=16, duration=10):
    """A fluid scenario with an injected mass leak: every step bleeds a
    fraction of the histogram, so the fluid-mass monitor must fire."""
    return {
        "name": "leak",
        "seed": 3,
        "duration": duration,
        "topology": {
            "type": "dumbbell",
            "capacity_bps": 600_000,
            "rtt": 0.2,
            "pkt_size": 200,
        },
        "queue": {"kind": "red", "buffer_rtts": 1.0},
        "workloads": [{"type": "bulk", "n_flows": n_flows}],
        "backend": {"kind": "fluid", "fault_leak": 0.01},
    }


def test_sampler_emits_fluid_cases_within_domain():
    fluid_docs = []
    for index in range(80):
        seed = 1_000_003 + index
        doc = sample_document(random.Random(seed), seed)
        if doc.get("backend", {}).get("kind") == "fluid":
            fluid_docs.append(doc)
    assert fluid_docs, "no fluid cases in 80 samples"
    for doc in fluid_docs:
        assert doc["queue"]["kind"] in FLUID_QUEUE_KINDS
        assert all(w["type"] == "bulk" for w in doc["workloads"])


def test_run_case_dispatches_to_fluid_backend():
    doc = sample_document(random.Random(9), 9)
    doc["backend"] = {"kind": "fluid"}
    doc["queue"]["kind"] = "droptail"
    doc["workloads"] = [w for w in doc["workloads"] if w["type"] == "bulk"]
    assert run_case(doc) == []


def test_injected_mass_leak_is_caught():
    violations = run_case(leak_document())
    assert violations
    assert violations[0].monitor == "fluid-mass"


def test_shrinker_minimizes_fluid_repro():
    minimal = shrink(leak_document(), "fluid-mass")
    # The leak fires regardless of scale, so shrinking must bottom out.
    assert minimal["workloads"][0]["n_flows"] == 1
    assert minimal["duration"] <= 2.0
    assert minimal["backend"]["kind"] == "fluid"
    # And the minimal document still reproduces the same failure.
    violations = run_case(minimal)
    assert violations and violations[0].monitor == "fluid-mass"


def test_clean_fluid_case_has_no_violations():
    doc = leak_document()
    doc["backend"] = {"kind": "fluid"}  # same scenario, no fault
    assert run_case(doc) == []
