"""Fluid telemetry probes: armed runs must be bit-identical to unarmed."""

from __future__ import annotations

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.fluid.probe import FluidProbe, fluid_results_differ, instrument_fluid
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry


def _spec(n_flows: int, queue=None) -> ScenarioSpec:
    return ScenarioSpec.from_document({
        "name": f"probe-n{n_flows}",
        "seed": 1,
        "duration": 20,
        "topology": {"type": "dumbbell", "capacity_bps": 600_000,
                     "rtt": 0.2, "pkt_size": 500},
        "queue": queue or {"kind": "red", "buffer_rtts": 1.0},
        "workloads": [{"type": "bulk", "n_flows": n_flows}],
        "backend": {"kind": "fluid"},
    })


@pytest.mark.parametrize("n_flows", [4, 16, 64])
def test_armed_run_is_bit_identical(n_flows):
    """The acceptance grid: arming probes must not change a single bit
    of the result, at small, medium and large populations."""
    spec = _spec(n_flows)
    unarmed = build_simulation(spec)
    unarmed.run()

    armed = build_simulation(spec)
    probe = FluidProbe(MetricsRegistry())
    armed.model.probe = probe
    armed.run()

    assert fluid_results_differ(unarmed.result, armed.result) == []
    # And the probe actually observed the run.
    assert probe.registry.counters["fluid.steps"].value == armed.model.steps


@pytest.mark.parametrize("kind", ["droptail", "taq", "taq+ac"])
def test_parity_across_disciplines(kind):
    spec = _spec(16, queue={"kind": kind, "buffer_rtts": 1.0})
    unarmed = build_simulation(spec)
    unarmed.run()
    armed = build_simulation(spec)
    armed.model.probe = FluidProbe(MetricsRegistry())
    armed.run()
    assert fluid_results_differ(unarmed.result, armed.result) == []


def test_probe_records_queue_series_and_per_class_metrics():
    spec = _spec(8)
    built = build_simulation(spec)
    registry = MetricsRegistry()
    built.model.probe = FluidProbe(registry, sample_stride=4)
    built.run()
    queue = registry.series["fluid.queue_pkts"]
    assert queue.samples, "queue occupancy series must be populated"
    # Stride 4 thins the series to ~steps/4 samples.
    assert len(queue.samples) <= built.model.steps // 4 + 1
    drop_names = [n for n in registry.series if n.startswith("fluid.drop_pps.")]
    mass_names = [n for n in registry.series if n.startswith("fluid.mass.")]
    assert drop_names and mass_names
    assert registry.counters["fluid.steps"].value == built.model.steps


def test_instrument_fluid_imports_totals_and_stability(tmp_path):
    spec = _spec(16)
    built = build_simulation(spec)
    telemetry = Telemetry(str(tmp_path / "bundle"), sample_interval=0.5)
    probe = instrument_fluid(telemetry, built)
    assert built.model.probe is probe
    # Stride derives from sample_interval on the integrator clock.
    assert probe.sample_stride == max(1, round(0.5 / built.model.dt))
    built.run()
    telemetry.finalize(None, run_id="probe", seed=1, duration=spec.duration)
    counters = telemetry.registry.counters
    assert counters["fluid.offered_pkts"].value > 0
    assert counters["fluid.delivered_pkts"].value > 0
    assert counters["fluid.valid"].value == 1
    assert "fluid.stability.limit_cycle" in counters
    assert telemetry.registry.series["fluid.stability.amplitude_pkts"].samples


def test_admission_iterations_surface_for_taq_ac():
    spec = _spec(64, queue={"kind": "taq+ac", "buffer_rtts": 1.0})
    built = build_simulation(spec)
    assert built.admission_iterations >= 1
    assert 0.0 < built.admission_alpha <= 1.0


def test_probe_rejects_bad_stride():
    with pytest.raises(ValueError):
        FluidProbe(MetricsRegistry(), sample_stride=0)
