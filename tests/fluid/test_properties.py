"""Property tests for the mean-field integrator.

Four laws the fluid backend must obey for *any* in-domain scenario:
mass is conserved at every step, results are bit-identical run to run,
the class order cannot matter (the population is exchangeable by
construction), and halving the step converges — the discretization
error contracts as dt shrinks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid import FLUID_DISCIPLINES, FluidClass, FluidModel

DISCIPLINE_NAMES = ("droptail", "red", "taq")

classes_strategy = st.lists(
    st.builds(
        FluidClass,
        name=st.sampled_from(["a", "b", "c", "d"]),
        n_flows=st.integers(min_value=1, max_value=200).map(float),
        rtt=st.sampled_from([0.05, 0.1, 0.2, 0.35]),
    ),
    min_size=1,
    max_size=3,
    unique_by=lambda c: c.name,
)


def build_model(classes, discipline_name, capacity_pps, dt=None):
    return FluidModel(
        list(classes),
        capacity_pps=capacity_pps,
        buffer_pkts=50.0,
        discipline=FLUID_DISCIPLINES[discipline_name](),
        wmax=8,
        dt=dt,
    )


@settings(max_examples=25, deadline=None)
@given(
    classes=classes_strategy,
    discipline=st.sampled_from(DISCIPLINE_NAMES),
    capacity_pps=st.sampled_from([50.0, 200.0, 1000.0]),
)
def test_property_mass_conserved_every_step(classes, discipline, capacity_pps):
    model = build_model(classes, discipline, capacity_pps)
    counts = model.h.sum(axis=1).copy()
    for _ in range(200):
        model.step()
        np.testing.assert_allclose(model.h.sum(axis=1), counts, rtol=1e-9)
        assert model.h.min() >= -1e-12
        assert 0.0 <= model.q <= model.buffer_pkts
    assert not model.violations


@settings(max_examples=8, deadline=None)
@given(
    classes=classes_strategy,
    discipline=st.sampled_from(DISCIPLINE_NAMES),
    capacity_pps=st.sampled_from([50.0, 200.0, 1000.0]),
)
def test_property_repeat_runs_bit_identical(classes, discipline, capacity_pps):
    results = []
    for _ in range(2):
        model = build_model(classes, discipline, capacity_pps)
        result = model.run(10.0)
        results.append(result)
    a, b = results
    assert a.loss_rate == b.loss_rate
    assert a.mean_queue_pkts == b.mean_queue_pkts
    assert a.short_term_jain == b.short_term_jain
    assert np.array_equal(a.final_histogram, b.final_histogram)


@settings(max_examples=8, deadline=None)
@given(
    classes=classes_strategy,
    permutation=st.randoms(use_true_random=False),
    discipline=st.sampled_from(DISCIPLINE_NAMES),
)
def test_property_class_order_invariant(classes, permutation, discipline):
    shuffled = list(classes)
    permutation.shuffle(shuffled)
    a = build_model(classes, discipline, 200.0).run(10.0)
    b = build_model(shuffled, discipline, 200.0).run(10.0)
    assert a.loss_rate == b.loss_rate
    assert a.long_term_jain == b.long_term_jain
    assert np.array_equal(a.final_histogram, b.final_histogram)


@settings(max_examples=6, deadline=None)
@given(
    n_flows=st.integers(min_value=4, max_value=120),
    discipline=st.sampled_from(DISCIPLINE_NAMES),
)
def test_property_step_halving_converges(n_flows, discipline):
    """Halving dt twice must contract the change in the headline
    metrics: |M(dt/2) - M(dt/4)| <= |M(dt) - M(dt/2)|, unless both
    deltas are already under an absolute floor — convergence near a
    limit cycle is not monotone, and a coarse pair can agree
    coincidentally tighter than the refined pair."""
    classes = [FluidClass(name="c", n_flows=float(n_flows), rtt=0.2)]

    def run_at(dt):
        result = build_model(classes, discipline, 150.0, dt=dt).run(40.0)
        return np.array([result.loss_rate, result.mean_queue_pkts])

    coarse, half, quarter = run_at(0.02), run_at(0.01), run_at(0.005)
    first = np.abs(coarse - half)
    second = np.abs(half - quarter)
    floor = np.array([2e-3, 0.5])
    assert np.all(second <= np.maximum(first * 1.05, floor))
