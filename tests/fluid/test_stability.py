"""RED stability diagnostics: limit-cycle detector and Reynier condition.

The two pinned parameterizations are the PR's acceptance anchors: a
known-oscillatory RED configuration (slow EWMA, steep ramp) must be
flagged as a limit cycle, a known-stable one as stable — and in both
cases the empirical verdict must agree with the analytic Reynier
condition evaluated at the same operating point.
"""

from __future__ import annotations

import math

import pytest

from repro.fluid.stability import (
    analyze_spec,
    detect_limit_cycle,
    render_stability,
    reynier_condition,
)

#: Slow EWMA + maximally steep ramp between narrow thresholds: the
#: averaged queue lags the instantaneous one by whole oscillation
#: periods, so drops arrive out of phase and the loop rings forever.
OSCILLATORY_DOC = {
    "name": "red-oscillatory",
    "seed": 1,
    "duration": 120,
    "topology": {"type": "dumbbell", "capacity_bps": 2_000_000,
                 "rtt": 0.1, "pkt_size": 1000},
    "queue": {"kind": "red", "buffer_rtts": 2.0,
              "min_th": 10, "max_th": 14, "max_p": 1.0, "weight": 0.0005},
    "workloads": [{"type": "bulk", "n_flows": 4, "extra_rtt_max": 0}],
    "backend": {"kind": "fluid"},
}

#: The rule-of-thumb defaults at a larger population: gentle ramp, a
#: responsive EWMA, 4x the flows (the loop gain scales as 1/N).
STABLE_DOC = {
    "name": "red-stable",
    "seed": 1,
    "duration": 120,
    "topology": {"type": "dumbbell", "capacity_bps": 2_000_000,
                 "rtt": 0.1, "pkt_size": 1000},
    "queue": {"kind": "red", "buffer_rtts": 2.0,
              "max_p": 0.1, "weight": 0.002},
    "workloads": [{"type": "bulk", "n_flows": 16, "extra_rtt_max": 0}],
    "backend": {"kind": "fluid"},
}

CAPACITY_PPS = 250.0  # 2 Mbps / 1000 B packets


# ----------------------------------------------------------------------
# Limit-cycle detector on synthetic trajectories
# ----------------------------------------------------------------------

def test_detector_flags_sustained_sine():
    times = [i * 0.05 for i in range(2000)]
    values = [20.0 + 8.0 * math.sin(2 * math.pi * t / 2.0) for t in times]
    report = detect_limit_cycle(times, values)
    assert report.oscillating
    assert report.amplitude == pytest.approx(8.0, rel=0.1)
    assert report.period == pytest.approx(2.0, rel=0.15)


def test_detector_passes_decaying_transient():
    times = [i * 0.05 for i in range(2000)]
    values = [
        20.0 + 10.0 * math.exp(-0.08 * t) * math.sin(2 * math.pi * t / 2.0)
        for t in times
    ]
    report = detect_limit_cycle(times, values)
    assert not report.oscillating  # decays: a transient, not a cycle


def test_detector_passes_flat_trajectory():
    times = [i * 0.1 for i in range(500)]
    report = detect_limit_cycle(times, [13.6] * len(times))
    assert not report.oscillating
    assert report.amplitude == 0.0


# ----------------------------------------------------------------------
# The pinned parameterizations, end to end
# ----------------------------------------------------------------------

def test_oscillatory_red_flagged_as_limit_cycle():
    report = analyze_spec(OSCILLATORY_DOC)
    assert report.verdict == "limit-cycle"
    assert report.oscillation is not None
    assert report.oscillation.amplitude > 5.0
    # Empirical and analytic verdicts must agree on the unstable side.
    assert report.condition is not None
    assert not report.condition.stable
    assert report.condition.dominant_real > 0.0


def test_stable_red_flagged_as_stable():
    report = analyze_spec(STABLE_DOC)
    assert report.verdict == "stable"
    assert report.oscillation is not None
    assert not report.oscillation.oscillating
    assert report.condition is not None
    assert report.condition.stable
    assert report.condition.dominant_real < 0.0


def test_reynier_condition_matches_pinned_cases():
    unstable = reynier_condition(
        w_q=0.0005, max_p=1.0, min_th=10, max_th=14,
        capacity_pps=CAPACITY_PPS, n_flows=4, rtt=0.1,
    )
    assert not unstable.stable
    stable = reynier_condition(
        w_q=0.002, max_p=0.1, min_th=12.5, max_th=37.5,
        capacity_pps=CAPACITY_PPS, n_flows=16, rtt=0.1,
    )
    assert stable.stable
    # The margin orders the two configurations correctly.
    assert unstable.dominant_real > stable.dominant_real


def test_reynier_condition_population_crosses_stability_boundary():
    """Loop gain scales as 1/N: the pinned oscillatory configuration
    crosses into the stable region when the population quadruples."""
    at_4 = reynier_condition(
        w_q=0.0005, max_p=1.0, min_th=10, max_th=14,
        capacity_pps=CAPACITY_PPS, n_flows=4, rtt=0.1,
    )
    at_16 = reynier_condition(
        w_q=0.0005, max_p=1.0, min_th=10, max_th=14,
        capacity_pps=CAPACITY_PPS, n_flows=16, rtt=0.1,
    )
    assert not at_4.stable
    assert at_16.stable


def test_reynier_condition_validates_params():
    with pytest.raises(ValueError):
        reynier_condition(w_q=0.0, max_p=0.1, min_th=5, max_th=15,
                          capacity_pps=250.0, n_flows=4, rtt=0.1)
    with pytest.raises(ValueError):
        reynier_condition(w_q=0.002, max_p=0.1, min_th=15, max_th=5,
                          capacity_pps=250.0, n_flows=4, rtt=0.1)


def test_render_stability_mentions_verdict_and_params():
    report = analyze_spec(OSCILLATORY_DOC)
    text = render_stability(report)
    assert "limit-cycle" in text
    assert "Reynier" in text
    assert "w_q" in text
