"""Tests for the terminal chart renderer."""

from repro.metrics.asciichart import bar_chart, cdf_chart, line_chart


def test_line_chart_places_extremes():
    chart = line_chart({"a": [(0.0, 0.0), (10.0, 1.0)]}, width=20, height=5)
    lines = chart.splitlines()
    # Top row holds the max, bottom data row the min.
    assert "o" in lines[0]
    assert "o" in lines[4]


def test_line_chart_legend_and_labels():
    chart = line_chart(
        {"taq": [(1, 1)], "droptail": [(2, 2)]},
        x_label="fair share", y_label="JFI",
    )
    assert "o taq" in chart
    assert "x droptail" in chart
    assert "JFI" in chart
    assert "fair share" in chart


def test_line_chart_empty():
    assert line_chart({}) == "(no data)"
    assert line_chart({"a": []}) == "(no data)"


def test_line_chart_flat_series_does_not_crash():
    chart = line_chart({"flat": [(0, 5.0), (1, 5.0)]})
    assert "flat" in chart


def test_bar_chart_scales_to_peak():
    chart = bar_chart({"dt": 10.0, "taq": 5.0}, width=10)
    lines = chart.splitlines()
    assert lines[0].count("#") > lines[1].count("#")
    assert "10" in lines[0]


def test_bar_chart_empty_and_zero():
    assert bar_chart({}) == "(no data)"
    chart = bar_chart({"a": 0.0})
    assert "a" in chart


def test_cdf_chart_renders():
    chart = cdf_chart({"dt": [(1.0, 0.5), (2.0, 1.0)]})
    assert "CDF" in chart


def test_experiment_charts_render():
    from repro.experiments import fig02_fairness_droptail as fig2
    from repro.experiments.sweeps import SweepPoint

    result = fig2.Result(points=[
        SweepPoint(600_000.0, 60, 10_000.0, 0.5, 0.6, 0.8, 0.99, 0.1, 100, 10, 0.1),
        SweepPoint(600_000.0, 30, 20_000.0, 1.0, 0.8, 0.9, 0.99, 0.05, 50, 5, 0.0),
    ])
    chart = result.chart()
    assert "600Kbps" in chart
    assert "fair share" in chart
