"""Unit and property tests for download-time distributions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.downloads import (
    DownloadSample,
    bucket_statistics,
    cdf_percentile,
    cdf_points,
    log_bucket,
    percentile,
    spread_orders_of_magnitude,
)


def test_log_bucket_boundaries():
    assert log_bucket(100) == 2
    assert log_bucket(999) == 2
    assert log_bucket(1000) == 3
    assert log_bucket(1_000_000) == 6


def test_log_bucket_rejects_zero():
    with pytest.raises(ValueError):
        log_bucket(0)


def test_percentile_interpolates():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 120)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
def test_property_percentile_within_range(xs):
    xs = sorted(xs)
    for q in (0, 10, 50, 90, 100):
        assert xs[0] <= percentile(xs, q) <= xs[-1]


def test_bucket_statistics_groups_and_summarizes():
    samples = [
        DownloadSample(150, 1.0),
        DownloadSample(900, 9.0),
        DownloadSample(5_000, 2.0),
    ]
    rows = bucket_statistics(samples)
    assert [r.bucket for r in rows] == [2, 3]
    small = rows[0]
    assert small.count == 2
    assert small.minimum == 1.0
    assert small.maximum == 9.0
    assert small.average == pytest.approx(5.0)


def test_cdf_points_monotone():
    points = cdf_points([3.0, 1.0, 2.0])
    assert points == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]


def test_cdf_percentile_median():
    assert cdf_percentile([1.0, 2.0, 3.0], 50) == 2.0


def test_spread_orders_of_magnitude():
    assert spread_orders_of_magnitude([0.1, 10.0]) == pytest.approx(2.0)
    assert spread_orders_of_magnitude([5.0]) == 0.0
