"""Unit tests for flow-evolution classification (Fig 9 machinery)."""

import pytest

from repro.metrics.evolution import classify_evolution, mean_counts
from repro.metrics.fairness import SliceGoodputCollector
from repro.net.packet import DATA, Packet


def feed(col, flow, slice_index, slice_width=10.0):
    col.observe(Packet(flow, DATA, seq=0, size=500), slice_index * slice_width + 1.0)


def test_all_four_transitions():
    col = SliceGoodputCollector(10.0)
    # Flow 1: active in slices 0,1 -> maintained at slice 1.
    feed(col, 1, 0); feed(col, 1, 1)
    # Flow 2: active in 0 only -> dropped at slice 1.
    feed(col, 2, 0)
    # Flow 3: active in 1 only -> arriving at slice 1.
    feed(col, 3, 1)
    # Flow 4: never active -> stalled at slice 1.
    windows = classify_evolution(col, [1, 2, 3, 4], start_index=1)
    w = windows[0]
    assert (w.maintained, w.dropped, w.arriving, w.stalled) == (1, 1, 1, 1)
    assert w.total == 4


def test_warmup_slice_seeds_previous_activity():
    col = SliceGoodputCollector(10.0)
    feed(col, 1, 0)
    feed(col, 1, 1)
    windows = classify_evolution(col, [1], start_index=1)
    assert windows[0].maintained == 1


def test_flow_silent_after_activity_then_returning():
    col = SliceGoodputCollector(10.0)
    feed(col, 1, 0)
    # silent in 1, returns in 2
    feed(col, 1, 2)
    windows = classify_evolution(col, [1], start_index=1)
    assert windows[0].dropped == 1
    assert windows[1].arriving == 1


def test_stalled_persists_across_windows():
    col = SliceGoodputCollector(10.0)
    feed(col, 1, 0)
    feed(col, 1, 3)  # defines the slice range 0..3
    windows = classify_evolution(col, [1, 2], start_index=1)
    stalled_counts = [w.stalled for w in windows]
    # Flow 2 never transmits (stalled throughout); flow 1 also counts as
    # stalled in window 2 (its second consecutive silent slice).
    assert stalled_counts == [1, 2, 1]


def test_mean_counts():
    col = SliceGoodputCollector(10.0)
    feed(col, 1, 0); feed(col, 1, 1); feed(col, 1, 2)
    windows = classify_evolution(col, [1, 2], start_index=1)
    means = mean_counts(windows)
    assert means["maintained"] == pytest.approx(1.0)
    assert means["stalled"] == pytest.approx(1.0)


def test_empty_collector():
    col = SliceGoodputCollector(10.0)
    assert classify_evolution(col, [1, 2]) == []
    assert mean_counts([])["maintained"] == 0.0
