"""Unit and property tests for the Jain index and slice collector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import SliceGoodputCollector, jain_index
from repro.net.packet import ACK, DATA, Packet


def data(flow, size=500):
    return Packet(flow, DATA, seq=0, size=size)


def test_jain_equal_shares_is_one():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_single_hog_is_one_over_n():
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)


def test_jain_empty_and_all_zero():
    assert jain_index([]) == 1.0
    assert jain_index([0, 0]) == 1.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
def test_property_jain_bounds(xs):
    j = jain_index(xs)
    assert 1.0 / len(xs) - 1e-9 <= j <= 1.0 + 1e-9 or j == 1.0  # all-zero -> 1


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=2, max_size=20),
    st.floats(min_value=0.1, max_value=100.0),
)
def test_property_jain_scale_invariant(xs, k):
    assert jain_index(xs) == pytest.approx(jain_index([x * k for x in xs]))


def test_collector_buckets_by_slice():
    col = SliceGoodputCollector(slice_seconds=10.0)
    col.observe(data(1), 5.0)
    col.observe(data(1), 15.0)
    col.observe(data(2), 15.0)
    assert col.slice_indices() == [0, 1]
    assert col.slice_goodputs(0, [1, 2]) == [400.0, 0.0]  # 500B*8/10s
    assert col.slice_goodputs(1, [1, 2]) == [400.0, 400.0]


def test_collector_ignores_acks():
    col = SliceGoodputCollector(10.0)
    col.observe(Packet(1, ACK, ack_seq=1), 1.0)
    assert col.slice_indices() == []


def test_slice_jain_counts_silent_flows():
    col = SliceGoodputCollector(10.0)
    col.observe(data(1), 1.0)
    # Flow 2 exists in the population but got nothing.
    assert col.slice_jain(0, [1, 2]) == pytest.approx(0.5)


def test_long_term_jain_over_all_slices():
    col = SliceGoodputCollector(10.0)
    col.observe(data(1), 1.0)
    col.observe(data(2), 11.0)
    assert col.long_term_jain([1, 2]) == pytest.approx(1.0)


def test_mean_short_term_skips_warmup_and_tail():
    col = SliceGoodputCollector(10.0)
    col.observe(data(1), 5.0)    # warmup slice 0
    col.observe(data(1), 15.0)   # slice 1 (kept)
    col.observe(data(2), 15.0)
    col.observe(data(1), 25.0)   # tail slice 2 (trimmed)
    assert col.mean_short_term_jain([1, 2]) == pytest.approx(1.0)


def test_shut_out_fraction():
    col = SliceGoodputCollector(10.0)
    col.observe(data(1), 1.0)
    assert col.shut_out_fraction(0, [1, 2, 3, 4]) == pytest.approx(0.75)


def test_top_consumers_share():
    col = SliceGoodputCollector(10.0)
    for _ in range(8):
        col.observe(data(1), 1.0)
    col.observe(data(2), 1.0)
    col.observe(data(3), 1.0)
    # Top 40% of {1,2,3} = 1 flow = flow 1 with 80% of bytes.
    assert col.top_consumers_share(0, 0.4, [1, 2, 3]) == pytest.approx(0.8)


def test_invalid_slice_width():
    with pytest.raises(ValueError):
        SliceGoodputCollector(0.0)
