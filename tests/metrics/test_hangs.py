"""Unit tests for hang detection."""

import pytest

from repro.metrics.hangs import fraction_with_hang_over, hang_durations, longest_hang


def test_gaps_include_session_edges():
    gaps = hang_durations([2.0, 5.0], session_start=0.0, session_end=10.0)
    assert gaps == [2.0, 3.0, 5.0]


def test_no_deliveries_is_one_long_hang():
    assert hang_durations([], 0.0, 30.0) == [30.0]


def test_longest_hang():
    assert longest_hang([2.0, 5.0], 0.0, 10.0) == 5.0


def test_deliveries_outside_session_ignored():
    gaps = hang_durations([-5.0, 2.0, 50.0], 0.0, 10.0)
    assert gaps == [2.0, 8.0]


def test_unsorted_input_handled():
    # Sorted: 1, 4, 9 -> gaps 1, 3, 5, 1; worst is the 4 -> 9 gap.
    assert longest_hang([9.0, 1.0, 4.0], 0.0, 10.0) == 5.0


def test_fraction_with_hang_over():
    users = [
        [1.0, 2.0, 3.0, 9.0],   # worst hang 6.0
        [5.0],                  # worst hang 5.0
        [0.5, 9.5],             # worst hang 9.0
    ]
    assert fraction_with_hang_over(users, 5.5, 0.0, 10.0) == pytest.approx(2 / 3)


def test_fraction_empty_population():
    assert fraction_with_hang_over([], 1.0, 0.0, 10.0) == 0.0


def test_invalid_session_bounds():
    with pytest.raises(ValueError):
        hang_durations([1.0], 5.0, 2.0)
