"""Tests for first-passage and silence-run model analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.analysis import (
    expected_epochs_to_timeout,
    expected_idle_epochs,
    expected_silence_run,
    silence_run_distribution,
)

LOSS = st.floats(min_value=0.01, max_value=0.45)


# ------------------------------------------------ first-passage time
def test_zero_loss_never_times_out():
    assert expected_epochs_to_timeout(0.0) == float("inf")


def test_first_passage_decreases_with_p():
    values = [expected_epochs_to_timeout(p) for p in (0.05, 0.1, 0.2, 0.35)]
    assert values == sorted(values, reverse=True)


def test_first_passage_from_s2_hand_check_high_loss():
    # At p -> 0.5-, S2 times out with prob 1-(1-p)^2 = 0.75 per epoch and
    # S3 similarly; survival is short.
    value = expected_epochs_to_timeout(0.45, start="S2")
    assert 1.0 < value < 3.0


def test_first_passage_larger_windows_survive_longer_at_small_p():
    # At small p, starting higher in the chain delays the first timeout
    # only modestly (the chain is short); but from S2 the flow must
    # climb, so starting at S6 cannot be *worse*... except S6 can only
    # fast-retransmit or time out, while S2 first enjoys loss-free
    # epochs.  Just pin both are finite and positive.
    for start in ("S2", "S6"):
        value = expected_epochs_to_timeout(0.05, start=start)
        assert 0 < value < 1000


def test_first_passage_rejects_timeout_start():
    with pytest.raises(ValueError):
        expected_epochs_to_timeout(0.1, start="b*")


@settings(max_examples=50, deadline=None)
@given(LOSS)
def test_property_first_passage_positive_finite(p):
    value = expected_epochs_to_timeout(p)
    assert 1.0 <= value < 1e6


# ------------------------------------------------ silence runs
@settings(max_examples=50, deadline=None)
@given(LOSS)
def test_property_silence_run_is_distribution(p):
    distribution = silence_run_distribution(p)
    assert sum(distribution.values()) == pytest.approx(1.0)
    assert all(v >= -1e-12 for v in distribution.values())


def test_silence_runs_lengthen_with_p():
    short = expected_silence_run(0.05)
    long_ = expected_silence_run(0.35)
    assert long_ > short
    assert short >= 1.0


def test_silence_run_mean_bounded_by_components():
    # The mixture mean sits between 1 (b0 runs) and 1/(1-2p) (b* runs).
    p = 0.3
    mean = expected_silence_run(p)
    assert 1.0 <= mean <= expected_idle_epochs(p) + 1e-9


def test_silence_run_distribution_tail_decays():
    distribution = silence_run_distribution(0.3, max_len=20)
    assert distribution[2] > distribution[5] > distribution[10]


def test_silence_run_matches_geometry():
    # Runs entering b* continue with probability 2p: the ratio of
    # consecutive lengths (beyond 1, which mixes in b0) equals 2p.
    p = 0.25
    distribution = silence_run_distribution(p, max_len=25)
    assert distribution[3] / distribution[2] == pytest.approx(2 * p, rel=1e-6)
