"""Unit and property tests for the generic Markov chain toolkit."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.chain import MarkovChain


def two_state_chain(a_to_b, b_to_a):
    chain = MarkovChain()
    chain.add_states(["A", "B"])
    chain.add_transition("A", "B", a_to_b)
    chain.add_transition("A", "A", 1 - a_to_b)
    chain.add_transition("B", "A", b_to_a)
    chain.add_transition("B", "B", 1 - b_to_a)
    return chain


def test_two_state_stationary_closed_form():
    chain = two_state_chain(0.3, 0.6)
    pi = chain.stationary()
    # pi_A = q/(p+q), pi_B = p/(p+q)
    assert pi["A"] == pytest.approx(0.6 / 0.9)
    assert pi["B"] == pytest.approx(0.3 / 0.9)


def test_validate_rejects_deficient_rows():
    chain = MarkovChain()
    chain.add_states(["A", "B"])
    chain.add_transition("A", "B", 0.5)
    chain.add_transition("B", "B", 1.0)
    with pytest.raises(ValueError):
        chain.validate()


def test_duplicate_state_rejected():
    chain = MarkovChain()
    chain.add_state("A")
    with pytest.raises(ValueError):
        chain.add_state("A")


def test_unknown_state_in_transition_rejected():
    chain = MarkovChain()
    chain.add_state("A")
    with pytest.raises(KeyError):
        chain.add_transition("A", "missing", 1.0)


def test_probability_bounds_checked():
    chain = MarkovChain()
    chain.add_states(["A", "B"])
    with pytest.raises(ValueError):
        chain.add_transition("A", "B", 1.5)


def test_transitions_accumulate():
    chain = MarkovChain()
    chain.add_states(["A"])
    chain.add_transition("A", "A", 0.5)
    chain.add_transition("A", "A", 0.5)
    assert chain.transition("A", "A") == pytest.approx(1.0)


def test_absorbing_state_detection():
    chain = MarkovChain()
    chain.add_states(["A", "B"])
    chain.add_transition("A", "B", 1.0)
    chain.add_transition("B", "B", 1.0)
    assert chain.absorbing_states() == ["B"]


def test_expected_return_time_inverse_of_pi():
    chain = two_state_chain(0.5, 0.5)
    assert chain.expected_return_time("A") == pytest.approx(2.0)


def test_stationary_is_fixed_point():
    chain = two_state_chain(0.2, 0.7)
    pi = chain.stationary()
    # pi P == pi
    next_a = pi["A"] * chain.transition("A", "A") + pi["B"] * chain.transition("B", "A")
    assert next_a == pytest.approx(pi["A"])


def test_simulate_visits_match_stationary():
    chain = two_state_chain(0.3, 0.6)
    path = chain.simulate("A", 20000, random.Random(3))
    frac_a = path.count("A") / len(path)
    assert frac_a == pytest.approx(chain.stationary()["A"], abs=0.02)


@settings(max_examples=50, deadline=None)
@given(
    a_to_b=st.floats(min_value=0.01, max_value=0.99),
    b_to_a=st.floats(min_value=0.01, max_value=0.99),
)
def test_property_stationary_sums_to_one_and_nonnegative(a_to_b, b_to_a):
    pi = two_state_chain(a_to_b, b_to_a).stationary()
    assert sum(pi.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in pi.values())


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=10), st.randoms(use_true_random=False))
def test_property_random_dense_chain_stationary_is_fixed_point(n, rnd):
    chain = MarkovChain()
    names = [f"s{i}" for i in range(n)]
    chain.add_states(names)
    for src in names:
        weights = [rnd.random() + 1e-6 for _ in range(n)]
        total = sum(weights)
        for dst, w in zip(names, weights):
            chain.add_transition(src, dst, w / total)
    pi = chain.stationary()
    for dst in names:
        inflow = sum(pi[src] * chain.transition(src, dst) for src in names)
        assert inflow == pytest.approx(pi[dst], abs=1e-6)
