"""Closed-form checks of the paper's §3.1 equations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.analysis import backoff_stage_probability, expected_idle_epochs
from repro.model.full import aggregate_stage3_idle_epochs
from repro.model.partial import (
    fast_retransmit_probability,
    timeout_probability_from_window,
    window_success_probability,
)

LOSS = st.floats(min_value=0.001, max_value=0.45)


@given(LOSS, st.integers(min_value=2, max_value=10))
@settings(max_examples=100, deadline=None)
def test_eq1_success_probability(p, n):
    assert window_success_probability(n, p) == pytest.approx((1 - p) ** n)


@given(LOSS, st.integers(min_value=4, max_value=10))
@settings(max_examples=100, deadline=None)
def test_eq2_fast_retransmit_probability(p, n):
    expected = n * p * (1 - p) ** (n - 1) * (1 - p)
    assert fast_retransmit_probability(n, p) == pytest.approx(expected)


def test_no_fast_retransmit_below_window_4():
    assert fast_retransmit_probability(2, 0.1) == 0.0
    assert fast_retransmit_probability(3, 0.1) == 0.0


@given(LOSS, st.integers(min_value=2, max_value=10))
@settings(max_examples=100, deadline=None)
def test_eq3_residual_sums_to_one(p, n):
    total = (
        window_success_probability(n, p)
        + fast_retransmit_probability(n, p)
        + timeout_probability_from_window(n, p)
    )
    assert total == pytest.approx(1.0)


def test_eq7_first_stage_probability_is_one_minus_p():
    assert backoff_stage_probability(0.2, 1) == pytest.approx(0.8)


@given(LOSS)
@settings(max_examples=100, deadline=None)
def test_eq5_geometric_ratio_between_stages(p):
    for stage in (1, 2, 3):
        ratio = backoff_stage_probability(p, stage + 1) / backoff_stage_probability(p, stage)
        assert ratio == pytest.approx(p)


@given(LOSS)
@settings(max_examples=100, deadline=None)
def test_eq6_stage_probabilities_sum_to_one(p):
    total = sum(backoff_stage_probability(p, k) for k in range(1, 200))
    assert total == pytest.approx(1.0, abs=1e-6)


@given(LOSS)
@settings(max_examples=100, deadline=None)
def test_eq8_expected_idle_closed_form_matches_series(p):
    # sum_{k>=1} (2^k - 1) p^(k-1) (1-p) == 1/(1-2p)
    series = sum((2**k - 1) * p ** (k - 1) * (1 - p) for k in range(1, 400))
    assert expected_idle_epochs(p) == pytest.approx(series, rel=1e-6)


def test_eq8_examples():
    assert expected_idle_epochs(0.0) == pytest.approx(1.0)
    assert expected_idle_epochs(0.25) == pytest.approx(2.0)


def test_eq8_domain():
    with pytest.raises(ValueError):
        expected_idle_epochs(0.5)
    with pytest.raises(ValueError):
        expected_idle_epochs(-0.1)


@given(LOSS)
@settings(max_examples=100, deadline=None)
def test_stage3_aggregate_idle_matches_series(p):
    # sum_{j>=3} (2^j - 1) p^(j-3) (1-p) == 8(1-p)/(1-2p) - 1
    series = sum((2**j - 1) * p ** (j - 3) * (1 - p) for j in range(3, 400))
    assert aggregate_stage3_idle_epochs(p) == pytest.approx(series, rel=1e-6)


def test_stage3_aggregate_minimum_is_seven_epochs():
    # At p -> 0 the aggregate is just stage 3: a 7-epoch wait.
    assert aggregate_stage3_idle_epochs(1e-9) == pytest.approx(7.0)
