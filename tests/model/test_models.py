"""Tests of the assembled partial and full models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    build_full_model,
    build_partial_model,
    find_tipping_point,
    packets_sent_census,
    silence_probability,
    timeout_probability,
)

LOSS = st.floats(min_value=0.005, max_value=0.45)


def test_partial_model_states():
    chain = build_partial_model(0.1)
    assert set(chain.states) == {"S1", "b0", "b*", "S2", "S3", "S4", "S5", "S6"}


def test_full_model_states():
    chain = build_full_model(0.1)
    assert set(chain.states) == {
        "b0", "R1", "W2", "R2", "W3", "R3", "S2", "S3", "S4", "S5", "S6",
    }


def test_partial_rows_are_stochastic():
    build_partial_model(0.2).validate()


def test_full_rows_are_stochastic():
    build_full_model(0.2).validate()


def test_b_star_transitions_match_eqs_9_10():
    chain = build_partial_model(0.2)
    assert chain.transition("b*", "S1") == pytest.approx(0.6)
    assert chain.transition("b*", "b*") == pytest.approx(0.4)


def test_s1_recovers_to_s2_or_backs_off():
    chain = build_partial_model(0.3)
    assert chain.transition("S1", "S2") == pytest.approx(0.7)
    assert chain.transition("S1", "b*") == pytest.approx(0.3)


def test_simple_timeouts_route_through_b0():
    chain = build_partial_model(0.1)
    for n in (4, 5, 6):
        assert chain.transition(f"S{n}", "b0") > 0
        assert chain.transition(f"S{n}", "b*") == 0.0
    assert chain.transition("b0", "S1") == pytest.approx(1.0)


def test_small_windows_route_to_aggregate():
    chain = build_partial_model(0.1)
    for n in (2, 3):
        assert chain.transition(f"S{n}", "b*") > 0
        assert chain.transition(f"S{n}", "b0") == 0.0


def test_s2_s3_have_no_fast_retransmit_arcs():
    chain = build_partial_model(0.1)
    assert chain.transition("S2", "S1") == 0.0
    assert chain.transition("S3", "S1") == 0.0


def test_fast_retransmit_halves_window():
    chain = build_partial_model(0.1)
    assert chain.transition("S4", "S2") > 0
    assert chain.transition("S5", "S2") > 0
    assert chain.transition("S6", "S3") > 0


def test_zero_loss_flow_lives_at_wmax():
    pi = build_partial_model(0.0).stationary()
    assert pi["S6"] == pytest.approx(1.0, abs=1e-9)


@given(LOSS)
@settings(max_examples=60, deadline=None)
def test_property_census_is_distribution(p):
    census = packets_sent_census(build_partial_model(p))
    assert sum(census.values()) == pytest.approx(1.0, abs=1e-6)
    assert all(v >= -1e-12 for v in census.values())
    assert set(census) == set(range(0, 7))


@given(LOSS)
@settings(max_examples=60, deadline=None)
def test_property_full_census_is_distribution(p):
    census = packets_sent_census(build_full_model(p))
    assert sum(census.values()) == pytest.approx(1.0, abs=1e-6)


def test_timeout_probability_monotone_in_p():
    values = [timeout_probability(p) for p in (0.02, 0.05, 0.1, 0.2, 0.3, 0.4)]
    assert values == sorted(values)


def test_silence_probability_monotone_in_p():
    values = [silence_probability(p) for p in (0.02, 0.05, 0.1, 0.2, 0.3, 0.4)]
    assert values == sorted(values)


def test_full_model_predicts_more_silence_than_partial():
    # The expanded ladder keeps repetitive-timeout flows silent longer.
    assert silence_probability(0.2, "full") > silence_probability(0.2, "partial")


def test_tipping_point_near_ten_percent():
    # §3.2/§4.3: the model's tipping point reads ~0.1.
    assert find_tipping_point("partial") == pytest.approx(0.1, abs=0.02)


def test_tipping_point_monotone_in_threshold():
    low = find_tipping_point("partial", threshold=0.2)
    high = find_tipping_point("partial", threshold=0.4)
    assert low < high


def test_wmax_extension():
    chain = build_partial_model(0.1, wmax=10)
    assert "S10" in chain.states
    census = packets_sent_census(chain)
    assert set(census) == set(range(0, 11))


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        build_partial_model(0.6)
    with pytest.raises(ValueError):
        build_partial_model(-0.1)
    with pytest.raises(ValueError):
        build_partial_model(0.1, wmax=3)
    with pytest.raises(ValueError):
        timeout_probability(0.1, variant="bogus")


def test_high_loss_majority_silent():
    # Deep in the breakdown region most epochs transmit nothing.
    assert silence_probability(0.4, "partial") > 0.5
