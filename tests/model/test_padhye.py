"""Unit tests for the Padhye/PFTK throughput model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import build_partial_model
from repro.model.padhye import (
    padhye_throughput_pkts_per_rtt,
    padhye_throughput_pps,
    stationary_throughput_pkts_per_epoch,
)


def test_small_p_limit_is_the_sqrt_law():
    # As p -> 0 the timeout term vanishes: T ~ 1/(RTT sqrt(2p/3)).
    p, rtt = 1e-4, 0.2
    expected = 1.0 / (rtt * math.sqrt(2 * p / 3))
    assert padhye_throughput_pps(p, rtt) == pytest.approx(expected, rel=0.05)


def test_wmax_caps_throughput():
    assert padhye_throughput_pps(1e-5, 0.2, wmax=6) == pytest.approx(30.0)


def test_throughput_decreases_with_p():
    rates = [padhye_throughput_pps(p, 0.2) for p in (0.01, 0.05, 0.1, 0.2, 0.4)]
    assert rates == sorted(rates, reverse=True)


def test_larger_rto_means_lower_throughput():
    fast = padhye_throughput_pps(0.2, 0.2, rto=0.4)
    slow = padhye_throughput_pps(0.2, 0.2, rto=2.0)
    assert slow < fast


def test_parameter_validation():
    with pytest.raises(ValueError):
        padhye_throughput_pps(0.0, 0.2)
    with pytest.raises(ValueError):
        padhye_throughput_pps(1.0, 0.2)
    with pytest.raises(ValueError):
        padhye_throughput_pps(0.1, 0.0)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.005, max_value=0.45))
def test_property_pkts_per_rtt_positive_and_finite(p):
    rate = padhye_throughput_pkts_per_rtt(p, rtt=1.0, rto=2.0, wmax=6)
    assert 0.0 < rate <= 6.0


def test_stationary_throughput_matches_census_mean():
    chain = build_partial_model(0.1)
    value = stationary_throughput_pkts_per_epoch(chain)
    assert 0.0 < value < 6.0


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.005, max_value=0.45))
def test_property_stationary_throughput_decreases_with_p(p):
    base = stationary_throughput_pkts_per_epoch(build_partial_model(0.005))
    value = stationary_throughput_pkts_per_epoch(build_partial_model(p))
    assert value <= base + 1e-9
