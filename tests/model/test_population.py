"""Unit tests for the population (mean-field) layer of ``repro.model``.

These are the analytic primitives the fluid backend leans on: the
partial-model transition matrix (scalar or per-state loss), its
stationary distribution, the N-flow fixed point, and the
Markov-additive slice moments behind the Jain estimate.
"""

import numpy as np
import pytest

from repro.model import (
    P_CHAIN_MAX,
    packets_per_state,
    population_fixed_point,
    slice_jain,
    slice_moments,
    state_layout,
    stationary_distribution,
    transition_matrix,
)


def test_state_layout_and_packets_per_state():
    states = state_layout(6)
    assert states[:3] == ["S1", "b0", "b*"]
    assert states[-1] == "S6"
    assert len(states) == 6 + 3 - 1
    sent = packets_per_state(6)
    assert list(sent[:3]) == [1, 0, 0]
    assert list(sent[3:]) == [2, 3, 4, 5, 6]


@pytest.mark.parametrize("p", [0.0, 0.01, 0.1, 0.49])
def test_transition_matrix_is_row_stochastic(p):
    T = transition_matrix(p, wmax=8)
    np.testing.assert_allclose(T.sum(axis=1), 1.0, atol=1e-12)
    assert T.min() >= 0.0


def test_transition_matrix_vector_loss_matches_scalar():
    n = len(state_layout(6))
    scalar = transition_matrix(0.07, wmax=6)
    vector = transition_matrix(np.full(n, 0.07), wmax=6)
    np.testing.assert_array_equal(scalar, vector)


def test_transition_matrix_rejects_out_of_range_loss():
    with pytest.raises(ValueError):
        transition_matrix(0.6)
    with pytest.raises(ValueError):
        transition_matrix(-0.1)


def test_stationary_distribution_is_a_fixed_point():
    T = transition_matrix(0.05, wmax=6)
    pi = stationary_distribution(T)
    np.testing.assert_allclose(pi @ T, pi, atol=1e-10)
    assert pi.sum() == pytest.approx(1.0)
    assert pi.min() >= 0.0


def test_fixed_point_undersubscribed_is_lossless():
    eq = population_fixed_point(2, capacity_pps=10_000.0, rtt=0.1)
    assert eq.p == 0.0
    assert eq.converged
    assert eq.delivered_pps == eq.offered_pps


def test_fixed_point_loss_monotone_in_population():
    losses = [
        population_fixed_point(n, capacity_pps=375.0, rtt=0.2).p
        for n in (8, 32, 128)
    ]
    assert losses[0] < losses[1] < losses[2]


def test_fixed_point_balances_offer_and_overload():
    eq = population_fixed_point(64, capacity_pps=375.0, rtt=0.2)
    assert eq.converged
    overload = max(0.0, 1.0 - 375.0 / eq.offered_pps)
    assert eq.p == pytest.approx(overload, abs=1e-9)


def test_fixed_point_pins_beyond_validity_envelope():
    eq = population_fixed_point(100_000, capacity_pps=100.0, rtt=0.2)
    assert eq.p == P_CHAIN_MAX
    assert not eq.converged


def test_census_masses_sum_to_one():
    eq = population_fixed_point(32, capacity_pps=375.0, rtt=0.2)
    assert sum(eq.census().values()) == pytest.approx(1.0)


def test_slice_moments_deterministic_chain_has_zero_variance():
    # A one-state absorbing chain sends a constant reward per epoch.
    T = np.array([[1.0]])
    mean, var = slice_moments(T, np.array([3.0]), epochs=10, pi=np.array([1.0]))
    assert mean == pytest.approx(30.0)
    assert var == pytest.approx(0.0, abs=1e-9)


def test_slice_moments_variance_nonnegative_and_scales():
    T = transition_matrix(0.08, wmax=6)
    rewards = packets_per_state(6).astype(float)
    mean5, var5 = slice_moments(T, rewards, epochs=5)
    mean50, var50 = slice_moments(T, rewards, epochs=50)
    assert var5 >= 0.0 and var50 >= 0.0
    assert mean50 == pytest.approx(10 * mean5)
    # Positive-correlation chains grow variance at least linearly.
    assert var50 > var5


def test_slice_jain_bounds_and_degenerate_case():
    T = transition_matrix(0.08, wmax=6)
    rewards = packets_per_state(6).astype(float)
    jain = slice_jain(T, rewards, epochs=20)
    assert 0.0 < jain <= 1.0
    # Zero-reward slices define Jain as 1.0 (no spread to measure).
    assert slice_jain(T, np.zeros_like(rewards), epochs=20) == 1.0


def test_slice_jain_approaches_one_for_long_slices():
    T = transition_matrix(0.05, wmax=6)
    rewards = packets_per_state(6).astype(float)
    short = slice_jain(T, rewards, epochs=3)
    long = slice_jain(T, rewards, epochs=300)
    assert long > short
    assert long > 0.95
