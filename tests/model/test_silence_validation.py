"""Integration: the model's silence-run predictions against simulation.

Beyond the census (Fig 6), the model makes a sharper prediction: how
*long* silent periods last (the geometry behind §2.3's hangs).  This
test measures silent-run lengths from sender round logs in a Wmax=6
SACK population and checks the model's expected run length is in the
same range and that both lengthen with p.
"""

from repro.experiments.runner import build_dumbbell
from repro.model import expected_silence_run
from repro.workloads import spawn_bulk_flows


def measure_mean_silence_run(n_flows, seed=1, duration=90.0, warmup=20.0):
    bench = build_dumbbell("droptail", 750_000, rtt=0.2, seed=seed)
    flows = spawn_bulk_flows(
        bench.bell, n_flows, start_window=5.0, extra_rtt_max=0.1,
        sack=True, max_cwnd=6.0, min_rto=0.4, round_log=True,
    )
    bench.sim.run(until=duration)
    runs = []
    for flow in flows:
        epoch = flow.sender.rto.srtt if flow.sender.rto.has_sample else flow.rtt
        rounds = sorted(flow.sender.round_log.rounds)
        previous_end = None
        for start, end, _sent in rounds:
            if start < warmup:
                previous_end = max(end, start + epoch)
                continue
            if previous_end is not None:
                silent = int(max(0.0, start - previous_end) / epoch)
                if silent >= 1:
                    runs.append(silent)
            previous_end = max(end, start + epoch)
    p = bench.queue.loss_rate()
    mean_run = sum(runs) / len(runs) if runs else 0.0
    return p, mean_run


def test_silence_runs_model_vs_simulation():
    p_low, run_low = measure_mean_silence_run(40)
    p_high, run_high = measure_mean_silence_run(150)
    assert p_low < p_high
    # Both lengthen with contention.
    assert run_high > run_low
    # The model's expectation lands in the same range (within ~2.5x —
    # the sim's RTO is srtt + 4*var, the model's an idealized 2xRTT).
    for p, measured in ((p_low, run_low), (p_high, run_high)):
        predicted = expected_silence_run(min(p, 0.49))
        assert predicted / 2.5 < measured < predicted * 2.5, (p, measured, predicted)
