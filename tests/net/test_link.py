"""Unit tests for Link: serialization, propagation, queueing, taps."""

import pytest

from repro.net.link import Link
from repro.net.packet import DATA, Packet
from repro.queues.droptail import DropTailQueue
from repro.sim.simulator import Simulator


class Sink:
    def __init__(self):
        self.arrivals = []

    def receive(self, packet, now):
        self.arrivals.append((now, packet))


def make_link(sim, capacity=8000.0, delay=1.0, buffer_pkts=10):
    return Link(sim, capacity, delay, DropTailQueue(buffer_pkts))


def packet(flow=1, size=1000, sink=None):
    p = Packet(flow, DATA, seq=0, size=size)
    p.dst = sink
    return p


def test_single_packet_latency_is_tx_plus_propagation():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=1.0)  # 1000B => 1s tx
    link.send(packet(size=1000, sink=sink))
    sim.run()
    assert sink.arrivals[0][0] == pytest.approx(2.0)


def test_back_to_back_packets_serialize():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=0.0)
    for _ in range(3):
        link.send(packet(size=1000, sink=sink))
    sim.run()
    times = [t for t, _ in sink.arrivals]
    assert times == pytest.approx([1.0, 2.0, 3.0])


def test_extra_delay_applies_per_packet():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=1.0)
    p = packet(size=1000, sink=sink)
    p.extra_delay = 0.5
    link.send(p)
    sim.run()
    assert sink.arrivals[0][0] == pytest.approx(2.5)


def test_queue_overflow_drops_and_counts():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=0.0, buffer_pkts=2)
    # One transmitting + 2 buffered; the 4th arrival must drop.
    results = [link.send(packet(size=1000, sink=sink)) for _ in range(4)]
    assert results == [True, True, True, False]
    assert link.stats.dropped == 1
    sim.run()
    assert len(sink.arrivals) == 3


def test_tap_sees_all_arrivals_including_drops():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=0.0, buffer_pkts=1)
    seen = []
    link.add_tap(lambda p, now: seen.append(p))
    for _ in range(5):
        link.send(packet(size=1000, sink=sink))
    assert len(seen) == 5


def test_utilization_and_byte_accounting():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=0.0)
    for _ in range(2):
        link.send(packet(size=1000, sink=sink))
    sim.run()
    assert link.stats.bytes_delivered == 2000
    assert link.stats.utilization(8000.0, 4.0) == pytest.approx(0.5)


def test_link_validates_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, 0.0, 0.1, DropTailQueue(1))
    with pytest.raises(ValueError):
        Link(sim, 1000.0, -0.1, DropTailQueue(1))


def test_idle_link_restarts_on_new_arrival():
    sim = Simulator()
    sink = Sink()
    link = make_link(sim, capacity=8000.0, delay=0.0)
    link.send(packet(size=1000, sink=sink))
    sim.run()
    link.send(packet(size=1000, sink=sink))
    sim.run()
    assert len(sink.arrivals) == 2
    assert sink.arrivals[1][0] == pytest.approx(2.0)
