"""Property tests: packet conservation through a link.

Under arbitrary send patterns, every packet offered to a link is
exactly one of: delivered, dropped at the queue, still buffered, or in
flight (transmitting / propagating).  After the simulator drains, the
in-flight term is zero and the ledger must balance exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import Link
from repro.net.packet import DATA, Packet
from repro.queues.droptail import DropTailQueue
from repro.queues.sfq import SFQQueue
from repro.sim.simulator import Simulator


class CountingSink:
    def __init__(self):
        self.count = 0

    def receive(self, packet, now):
        self.count += 1


@settings(max_examples=40, deadline=None)
@given(
    n_packets=st.integers(min_value=1, max_value=200),
    buffer_pkts=st.integers(min_value=1, max_value=50),
    burst=st.integers(min_value=1, max_value=20),
    gap_ms=st.integers(min_value=0, max_value=50),
)
def test_property_droptail_link_conserves_packets(n_packets, buffer_pkts, burst, gap_ms):
    sim = Simulator()
    sink = CountingSink()
    link = Link(sim, 400_000.0, 0.01, DropTailQueue(buffer_pkts))

    sent = 0

    def send_burst():
        nonlocal sent
        for _ in range(burst):
            if sent >= n_packets:
                return
            packet = Packet(1, DATA, seq=sent, size=500)
            packet.dst = sink
            link.send(packet)
            sent += 1
        if sent < n_packets:
            sim.schedule(gap_ms / 1000.0, send_burst)

    sim.schedule(0.0, send_burst)
    sim.run()
    assert sent == n_packets
    assert link.stats.arrived == n_packets
    assert link.stats.delivered + link.stats.dropped == n_packets
    assert sink.count == link.stats.delivered
    assert len(link.queue) == 0


@settings(max_examples=25, deadline=None)
@given(
    n_packets=st.integers(min_value=1, max_value=150),
    n_flows=st.integers(min_value=1, max_value=10),
    buffer_pkts=st.integers(min_value=2, max_value=40),
)
def test_property_sfq_link_conserves_packets(n_packets, n_flows, buffer_pkts):
    sim = Simulator()
    sink = CountingSink()
    queue = SFQQueue(buffer_pkts, buckets=8)
    link = Link(sim, 400_000.0, 0.0, queue)
    for i in range(n_packets):
        packet = Packet(i % n_flows, DATA, seq=i, size=500)
        packet.dst = sink
        link.send(packet)
    sim.run()
    # SFQ evicts buffered packets (push-out): accepted arrivals can
    # still die, but the totals must balance.
    assert sink.count == link.stats.delivered
    assert link.stats.delivered + queue.dropped == n_packets
    assert len(queue) == 0


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=60),
)
def test_property_busy_time_equals_serialization(sizes):
    sim = Simulator()
    sink = CountingSink()
    link = Link(sim, 1_000_000.0, 0.005, DropTailQueue(1000))
    for i, size in enumerate(sizes):
        packet = Packet(1, DATA, seq=i, size=size)
        packet.dst = sink
        link.send(packet)
    sim.run()
    expected = sum(size * 8 for size in sizes) / 1_000_000.0
    assert abs(link.stats.busy_time - expected) < 1e-9
    assert link.stats.bytes_delivered == sum(sizes)
