"""Unit tests for Host demultiplexing."""

import pytest

from repro.net.node import Host, Node
from repro.net.packet import ACK, DATA, FIN, SYN, SYNACK, Packet


class Endpoint:
    def __init__(self):
        self.received = []

    def receive(self, packet, now):
        self.received.append((packet, now))


def test_base_node_receive_abstract():
    with pytest.raises(NotImplementedError):
        Node("n").receive(Packet(1, DATA, seq=0), 0.0)


def test_data_routes_to_receiver_half():
    host = Host("h")
    sender, receiver = Endpoint(), Endpoint()
    host.bind_sender(1, sender)
    host.bind_receiver(1, receiver)
    for kind in (DATA, SYN, FIN):
        host.receive(Packet(1, kind, seq=0), 1.0)
    assert len(receiver.received) == 3
    assert sender.received == []


def test_acks_route_to_sender_half():
    host = Host("h")
    sender, receiver = Endpoint(), Endpoint()
    host.bind_sender(1, sender)
    host.bind_receiver(1, receiver)
    for kind in (ACK, SYNACK):
        host.receive(Packet(1, kind, ack_seq=1), 1.0)
    assert len(sender.received) == 2
    assert receiver.received == []


def test_unknown_flow_dropped_silently():
    host = Host("h")
    host.receive(Packet(99, DATA, seq=0), 0.0)  # no exception


def test_flows_are_isolated():
    host = Host("h")
    a, b = Endpoint(), Endpoint()
    host.bind_receiver(1, a)
    host.bind_receiver(2, b)
    host.receive(Packet(2, DATA, seq=0), 0.0)
    assert a.received == []
    assert len(b.received) == 1


def test_unbind_removes_both_halves():
    host = Host("h")
    sender, receiver = Endpoint(), Endpoint()
    host.bind_sender(1, sender)
    host.bind_receiver(1, receiver)
    host.unbind(1)
    host.receive(Packet(1, DATA, seq=0), 0.0)
    host.receive(Packet(1, ACK, ack_seq=1), 0.0)
    assert sender.received == []
    assert receiver.received == []
    host.unbind(1)  # idempotent
