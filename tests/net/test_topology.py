"""Unit tests for the dumbbell topology and regime arithmetic."""

import pytest

from repro.net.topology import Dumbbell, rtt_buffer_pkts
from repro.sim.simulator import Simulator


def test_rtt_buffer_sizing_matches_paper_example():
    # 1 Mbps, 200 ms RTT, 500 B packets => "50 packets worth of buffer
    # space (one RTT worth of delay)" (§2.3).
    assert rtt_buffer_pkts(1_000_000, 0.2, 500) == 50


def test_rtt_buffer_minimum_one_packet():
    assert rtt_buffer_pkts(1000, 0.001, 1500) == 1


def test_rtt_buffer_scales_with_multiplier():
    base = rtt_buffer_pkts(1_000_000, 0.2, 500, rtts=1.0)
    assert rtt_buffer_pkts(1_000_000, 0.2, 500, rtts=2.0) == 2 * base


def test_fair_share_and_packets_per_rtt():
    sim = Simulator()
    bell = Dumbbell(sim, capacity_bps=1_000_000, rtt=0.2, pkt_size=500)
    assert bell.fair_share_bps(100) == pytest.approx(10_000)
    # 10 Kbps * 0.2 s / (8 * 500) = 0.5 packets per RTT
    assert bell.packets_per_rtt(100) == pytest.approx(0.5)


def test_regime_classification():
    sim = Simulator()
    bell = Dumbbell(sim, capacity_bps=1_000_000, rtt=0.2, pkt_size=500)
    assert bell.regime(100) == "sub-packet"        # 0.5 pkt/RTT
    assert "small-packet" in bell.regime(25)       # 2 pkt/RTT
    assert bell.regime(2) == "normal"              # 25 pkt/RTT


def test_fair_share_requires_positive_flows():
    sim = Simulator()
    bell = Dumbbell(sim, capacity_bps=1_000_000, rtt=0.2)
    with pytest.raises(ValueError):
        bell.fair_share_bps(0)


def test_default_queue_is_one_rtt_droptail():
    sim = Simulator()
    bell = Dumbbell(sim, capacity_bps=1_000_000, rtt=0.2, pkt_size=500)
    assert bell.queue.capacity_pkts == 50


def test_reverse_path_is_fast_by_default():
    sim = Simulator()
    bell = Dumbbell(sim, capacity_bps=1_000_000, rtt=0.2)
    assert bell.reverse.capacity_bps == pytest.approx(100_000_000)
    assert bell.forward.delay + bell.reverse.delay == pytest.approx(0.2)
