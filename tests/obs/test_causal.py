"""Critical-path attribution over span traces.

The unit layer hand-builds small span sets so every attribution rule is
pinned against known arithmetic: category priority where claims
overlap, boundary splitting, contributor merging, the transfer
residual.  The acceptance layer runs the paper's Fig 12 situation — an
admission-controlled TAQ bottleneck under heavy load, where short web
downloads hang for tens of seconds — and requires that the critical
path explains at least 95% of the hung flow's completion time with
concrete admission / RTO / drop spans, which is the whole point of the
tracing plane: a hang you can't attribute is a hang you can't fix.
"""

from __future__ import annotations

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.obs.causal import (
    CATEGORY_PRIORITY,
    critical_path,
    flow_table,
    render_critical_path,
    render_flow_table,
    render_timeline,
    spans_by_flow,
    worst_flow,
)
from repro.obs.spans import Span, recording


def _flow(flow_id, t0, t1, next_id=0):
    return Span(next_id, "flow", flow_id=flow_id, t0=t0, t1=t1)


# ----------------------------------------------------------------------
# Attribution rules
# ----------------------------------------------------------------------
class TestAttribution:
    def test_refused_syn_wait_is_admission_time(self):
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "syn_wait", flow_id=1, t0=0.0, t1=3.0, parent=0,
                 attempt=1, refused=True),
        ]
        path = critical_path(spans, 1)
        assert path.by_category == {"admission": pytest.approx(3.0)}
        assert path.transfer == pytest.approx(7.0)
        assert path.attributed_fraction() == pytest.approx(0.3)

    def test_lost_syn_wait_is_syn_loss_time(self):
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "syn_wait", flow_id=1, t0=0.0, t1=3.0, parent=0, attempt=1),
        ]
        path = critical_path(spans, 1)
        assert path.by_category == {"syn_loss": pytest.approx(3.0)}

    def test_drop_claim_spans_drop_to_fast_retransmit(self):
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "pkt", flow_id=1, t0=2.0, t1=2.5, parent=0, pkt="data",
                 seq=4, outcome="dropped"),
            Span(2, "fast_rtx", flow_id=1, t0=4.0, t1=4.0, parent=0,
                 cause=1, seq=4),
        ]
        path = critical_path(spans, 1)
        # The loss-detection window: the drop's close to the retransmit.
        assert path.by_category == {"drop": pytest.approx(1.5)}

    def test_queueing_claims_come_from_enq_tx_stage_pairs(self):
        pkt = Span(1, "pkt", flow_id=1, t0=1.0, t1=3.0, parent=0, pkt="data",
                   outcome="delivered")
        pkt.stages = [["created", 1.0], ["enq", 1.0, "fwd"],
                      ["tx", 2.2, "fwd"], ["deliv", 3.0]]
        path = critical_path([_flow(1, 0.0, 10.0), pkt], 1)
        assert path.by_category == {"queueing": pytest.approx(1.2)}

    def test_overlapping_claims_charge_by_priority(self):
        # An RTO stall covering a queueing wait: every instant goes to
        # the higher-priority rto category, never double-charged.
        pkt = Span(2, "pkt", flow_id=1, t0=2.0, t1=6.0, parent=0, pkt="data",
                   outcome="delivered")
        pkt.stages = [["enq", 2.0, "fwd"], ["tx", 6.0, "fwd"]]
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "rto", flow_id=1, t0=1.0, t1=5.0, parent=0,
                 backoff=1, rto=4.0, stall=4.0),
            pkt,
        ]
        path = critical_path(spans, 1)
        assert path.by_category["rto"] == pytest.approx(4.0)
        assert path.by_category["queueing"] == pytest.approx(1.0)  # 5.0..6.0
        total = sum(path.by_category.values())
        assert total <= path.sojourn + 1e-9
        assert path.transfer == pytest.approx(path.sojourn - total)

    def test_claims_clip_to_the_flow_extent(self):
        spans = [
            _flow(1, 2.0, 8.0),
            Span(1, "rto", flow_id=1, t0=0.0, t1=10.0, parent=0,
                 backoff=1, rto=10.0, stall=10.0),
        ]
        path = critical_path(spans, 1)
        assert path.by_category == {"rto": pytest.approx(6.0)}
        assert path.attributed_fraction() == pytest.approx(1.0)

    def test_adjacent_segments_of_one_span_merge_in_the_chain(self):
        # Two abutting claims from the same span must render as one
        # contributor segment, not a split at the internal boundary.
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "rto", flow_id=1, t0=1.0, t1=5.0, parent=0,
                 backoff=1, rto=4.0, stall=4.0),
            Span(2, "syn_wait", flow_id=1, t0=3.0, t1=4.0, parent=0, attempt=1),
        ]
        path = critical_path(spans, 1)
        rto_segments = [c for c in path.contributors if c[0] == "rto"]
        assert len(rto_segments) == 1
        assert rto_segments[0][1:3] == (1.0, 5.0)

    def test_contributors_are_time_ordered_and_disjoint(self):
        spans = [
            _flow(1, 0.0, 20.0),
            Span(1, "syn_wait", flow_id=1, t0=0.0, t1=3.0, parent=0,
                 attempt=1, refused=True),
            Span(2, "rto", flow_id=1, t0=5.0, t1=9.0, parent=0,
                 backoff=1, rto=4.0, stall=4.0),
            Span(3, "rto", flow_id=1, t0=9.0, t1=17.0, parent=0,
                 backoff=2, rto=8.0, stall=8.0),
        ]
        path = critical_path(spans, 1)
        edges = [(c[1], c[2]) for c in path.contributors]
        assert edges == sorted(edges)
        for (_, end), (start, _) in zip(edges, edges[1:]):
            assert start >= end - 1e-12

    def test_attributed_fraction_can_scope_to_wait_categories(self):
        pkt = Span(2, "pkt", flow_id=1, t0=4.0, t1=6.0, parent=0, pkt="data",
                   outcome="delivered")
        pkt.stages = [["enq", 4.0, "fwd"], ["tx", 6.0, "fwd"]]
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "rto", flow_id=1, t0=0.0, t1=3.0, parent=0,
                 backoff=1, rto=3.0, stall=3.0),
            pkt,
        ]
        path = critical_path(spans, 1)
        assert path.attributed_fraction() == pytest.approx(0.5)
        assert path.attributed_fraction(("rto",)) == pytest.approx(0.3)

    def test_open_flow_span_yields_none(self):
        assert critical_path([Span(0, "flow", flow_id=1, t0=0.0)], 1) is None

    def test_unknown_flow_yields_none(self):
        assert critical_path([_flow(1, 0.0, 10.0)], 99) is None

    def test_penalties_join_the_report_but_claim_no_time(self):
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "penalty", flow_id=1, t0=4.0, t1=4.0, parent=0,
                 recent_drops=3),
        ]
        path = critical_path(spans, 1)
        assert path.by_category == {}
        assert len(path.penalties) == 1


# ----------------------------------------------------------------------
# Flow listing
# ----------------------------------------------------------------------
class TestFlowTable:
    SPANS = [
        _flow(1, 0.0, 4.0),
        Span(1, "flow", flow_id=2, t0=0.0, t1=9.0),
        Span(2, "flow", flow_id=3, t0=0.0),  # still open
        Span(3, "rto", flow_id=2, t0=1.0, t1=2.0, backoff=1, rto=1.0, stall=1.0),
        Span(4, "run", flow_id=-1, t0=0.0, t1=10.0),
    ]

    def test_rows_sort_open_then_slowest_first(self):
        rows = flow_table(self.SPANS)
        assert [row["flow"] for row in rows] == [3, 2, 1]
        assert rows[0]["done"] is False
        assert rows[1]["rtos"] == 1

    def test_worst_flow_is_the_slowest_completed(self):
        assert worst_flow(self.SPANS) == 2

    def test_run_spans_are_excluded_from_grouping(self):
        assert -1 not in spans_by_flow(self.SPANS)

    def test_worst_flow_none_when_nothing_completed(self):
        assert worst_flow([Span(0, "flow", flow_id=1, t0=0.0)]) is None


# ----------------------------------------------------------------------
# Renderers (shape, not byte-for-byte)
# ----------------------------------------------------------------------
class TestRenderers:
    def test_render_critical_path_reports_attribution(self):
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "syn_wait", flow_id=1, t0=0.0, t1=6.0, parent=0,
                 attempt=1, refused=True),
        ]
        text = render_critical_path(critical_path(spans, 1))
        assert "flow 1" in text
        assert "admission" in text
        assert "60.0%" in text
        assert "contributor chain:" in text

    def test_render_timeline_shows_each_span_row(self):
        spans = [
            _flow(1, 0.0, 10.0),
            Span(1, "rto", flow_id=1, t0=1.0, t1=5.0, parent=0,
                 backoff=2, rto=4.0, stall=4.0),
        ]
        text = render_timeline(spans, 1)
        assert "sojourn=10.0000s" in text
        assert "rto backoff=2" in text
        assert "|" in text

    def test_render_timeline_handles_unknown_flow(self):
        assert "no spans recorded" in render_timeline([], 5)

    def test_render_flow_table_truncates(self):
        spans = [Span(i, "flow", flow_id=i, t0=0.0, t1=float(i + 1))
                 for i in range(5)]
        text = render_flow_table(spans, top=2)
        assert "5 flows traced" in text
        assert "... 3 more" in text


# ----------------------------------------------------------------------
# Acceptance: the Fig 12 hang is explainable
# ----------------------------------------------------------------------
#: An admission-controlled TAQ bottleneck saturated by bulk flows while
#: short web downloads (the paper's Fig 12 objects) arrive: a tight
#: admission threshold makes the web flows wait out multiple refused
#: SYN rounds, then climb the RTO ladder through residual congestion.
HANG_SCENARIO = {
    "name": "fig12-hang",
    "seed": 7,
    "duration": 90.0,
    "topology": {"type": "dumbbell", "capacity_bps": 200_000, "rtt": 0.2},
    "queue": {"kind": "taq+ac", "p_thresh": 0.02, "t_wait": 6.0},
    "workloads": [
        {"type": "bulk", "n_flows": 12},
        {"type": "web-bands", "n_users": 40, "objects_per_user": 1,
         "small_band": [4000, 8000], "large_fraction": 0.0,
         "connections": 1, "arrival_window": 20.0, "first_flow_id": 1000},
    ],
}

WAIT_CATEGORIES = ("admission", "rto", "drop", "syn_loss")


class TestFig12HangAttribution:
    @pytest.fixture(scope="class")
    def trace(self):
        spec = ScenarioSpec.from_document(HANG_SCENARIO)
        with recording() as recorder:
            built = build_simulation(spec)
            built.run()
        return recorder.spans

    def test_the_worst_flow_is_a_hung_web_download(self, trace):
        flow_id = worst_flow(trace)
        assert flow_id >= 1000  # a web object, not a bulk flow
        path = critical_path(trace, flow_id)
        # A few-kB object took the better part of a minute: a Fig 12 hang.
        assert path.sojourn > 30.0

    def test_hang_time_is_at_least_95_percent_attributed(self, trace):
        path = critical_path(trace, worst_flow(trace))
        assert path.attributed_fraction() >= 0.95
        # Even excluding queueing: concrete admission/RTO/drop spans
        # explain the hang, not a diffuse "time in buffers".
        assert path.attributed_fraction(WAIT_CATEGORIES) >= 0.95

    def test_the_attribution_names_admission_and_rto_waits(self, trace):
        path = critical_path(trace, worst_flow(trace))
        assert path.by_category.get("admission", 0.0) > 0.0
        categories = {c for c, *_ in path.contributors}
        assert categories & set(CATEGORY_PRIORITY)

    def test_every_completed_web_flow_is_mostly_attributed(self, trace):
        rows = [row for row in flow_table(trace)
                if row["flow"] >= 1000 and row["done"]]
        assert len(rows) >= 10
        for row in rows[:5]:  # the five slowest completed web flows
            path = critical_path(trace, row["flow"])
            assert path.attributed_fraction() >= 0.95, (
                f"flow {row['flow']}: only "
                f"{path.attributed_fraction() * 100:.1f}% attributed"
            )
