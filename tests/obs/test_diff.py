"""Behavioral diffing: summaries, tolerance rules, renderings, CLI gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.diff import (
    BEHAVIOR_SCHEMA,
    ToleranceRule,
    behavior_summary,
    diff_behavior,
    parse_tolerance,
    render_behavior_markdown,
    render_behavior_text,
    write_summary,
)
from repro.obs.telemetry import Telemetry


def _bundle(path, drops=5, util=0.9):
    telemetry = Telemetry(str(path))
    telemetry.registry.counter("queue.drops").inc(drops)
    series = telemetry.registry.time_series("outcome.utilization")
    series.append(10.0, util)
    telemetry.finalize(None, run_id=path.name, seed=1, duration=10.0,
                       qdisc={"kind": "droptail"})
    return str(path)


def test_summary_flattens_single_bundle(tmp_path):
    summary = behavior_summary(_bundle(tmp_path / "run"))
    assert summary["schema"] == BEHAVIOR_SCHEMA
    metrics = summary["metrics"]
    assert metrics["counter.queue.drops"] == 5.0
    assert metrics["series.outcome.utilization.last"] == 0.9
    assert summary["manifests"]["."]["qdisc"] == "droptail"


def test_summary_prefixes_bundle_trees(tmp_path):
    _bundle(tmp_path / "a")
    _bundle(tmp_path / "b", drops=7)
    summary = behavior_summary(str(tmp_path))
    assert summary["metrics"]["a/counter.queue.drops"] == 5.0
    assert summary["metrics"]["b/counter.queue.drops"] == 7.0


def test_summary_round_trips_through_file(tmp_path):
    summary = behavior_summary(_bundle(tmp_path / "run"))
    out = tmp_path / "baseline.json"
    write_summary(summary, str(out))
    loaded = behavior_summary(str(out))
    assert loaded["metrics"] == summary["metrics"]


def test_summary_rejects_non_summary_json(tmp_path):
    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        behavior_summary(str(bogus))
    with pytest.raises(FileNotFoundError):
        behavior_summary(str(tmp_path / "missing"))


def test_identical_bundles_diff_clean(tmp_path):
    a = _bundle(tmp_path / "a")
    b = _bundle(tmp_path / "b")
    diff = diff_behavior(a, b)
    assert diff.ok
    assert diff.out_of_tolerance == []
    assert "OK" in render_behavior_text(diff)
    assert "✅" in render_behavior_markdown(diff)


def test_changed_counter_is_flagged(tmp_path):
    a = _bundle(tmp_path / "a", drops=5)
    b = _bundle(tmp_path / "b", drops=9)
    diff = diff_behavior(a, b)
    assert not diff.ok
    names = [row.name for row in diff.out_of_tolerance]
    assert "counter.queue.drops" in names
    text = render_behavior_text(diff)
    assert "DIFFER" in text
    markdown = render_behavior_markdown(diff)
    assert "**OUT OF TOLERANCE**" in markdown and "❌" in markdown


def test_tolerance_rule_forgives_matching_metric(tmp_path):
    a = _bundle(tmp_path / "a", util=0.90)
    b = _bundle(tmp_path / "b", util=0.91)
    assert not diff_behavior(a, b).ok
    loose = diff_behavior(a, b, [ToleranceRule("series.outcome.*", rel=0.05)])
    assert loose.ok


def test_one_sided_metrics_fail_the_diff(tmp_path):
    a = behavior_summary(_bundle(tmp_path / "a"))
    b = behavior_summary(_bundle(tmp_path / "b"))
    b = dict(b)
    b["metrics"] = dict(b["metrics"])
    b["metrics"]["counter.new.thing"] = 1.0
    diff = diff_behavior(a, b)
    assert not diff.ok
    assert diff.only_in_b == ["counter.new.thing"]


def test_manifest_changes_are_informational(tmp_path):
    a = _bundle(tmp_path / "a")
    b_dir = tmp_path / "b"
    _bundle(b_dir)
    # Rewrite b's manifest with a different source hash: provenance
    # changed, behavior did not — the diff must stay ok.
    manifest_path = b_dir / "manifest.json"
    doc = json.loads(manifest_path.read_text())
    doc["source_hash"] = "f" * 64
    manifest_path.write_text(json.dumps(doc))
    diff = diff_behavior(a, str(b_dir))
    assert diff.ok
    assert diff.manifest_changes


def test_parse_tolerance_forms():
    rule = parse_tolerance("series.*=0.05")
    assert rule.pattern == "series.*" and rule.rel == 0.05
    rule = parse_tolerance("hist.*=0.1:2.0")
    assert rule.rel == 0.1 and rule.abs == 2.0
    with pytest.raises(ValueError):
        parse_tolerance("no-equals")
    with pytest.raises(ValueError):
        parse_tolerance("pat=notanumber")


def test_cli_diff_exit_codes(tmp_path, capsys):
    from repro.obs.cli import main

    a = _bundle(tmp_path / "a", drops=5)
    b = _bundle(tmp_path / "b", drops=5)
    c = _bundle(tmp_path / "c", drops=99)
    assert main(["diff", a, b]) == 0
    assert main(["diff", a, c]) == 1
    out = capsys.readouterr().out
    assert "DIFFER" in out
    assert main(["diff", a, c, "--tolerance", "counter.queue.drops=100"]) == 0


def test_cli_snapshot_and_summary_diff(tmp_path, capsys):
    from repro.obs.cli import main

    a = _bundle(tmp_path / "a")
    baseline = tmp_path / "baseline.json"
    assert main(["snapshot", a, "--out", str(baseline)]) == 0
    b = _bundle(tmp_path / "b")
    assert main(["diff", str(baseline), b]) == 0
    out_md = tmp_path / "diff.md"
    assert main(["diff", str(baseline), b, "--markdown",
                 "--out", str(out_md)]) == 0
    assert "✅" in out_md.read_text()
