"""OpenMetrics export: rendering, parsing, validation, bundle round-trip."""

from __future__ import annotations

import pytest

from repro.obs.export import (
    OPENMETRICS_CONTENT_TYPE,
    Family,
    bundle_openmetrics,
    families_from_metrics_doc,
    families_from_registry,
    parse_openmetrics,
    render_openmetrics,
    sanitize_name,
    validate_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


def test_sanitize_name_maps_dotted_registry_names():
    assert sanitize_name("queue.drops") == "taq_queue_drops"
    assert sanitize_name("fluid.drop_pps.bulk0.r1") == "taq_fluid_drop_pps_bulk0_r1"
    assert sanitize_name("weird name!") == "taq_weird_name"
    assert sanitize_name("") == "taq_metric"


def test_render_basic_families():
    families = [
        Family("taq_jobs", "gauge", help="jobs by state")
        .add(3, {"state": "pending"})
        .add(1, {"state": "running"}),
        Family("taq_drops", "counter", help="total drops").add(42),
    ]
    text = render_openmetrics(families)
    assert text.endswith("# EOF\n")
    assert 'taq_jobs{state="pending"} 3' in text
    # Counters get the mandatory _total sample suffix.
    assert "taq_drops_total 42" in text
    assert "# TYPE taq_drops counter" in text


def test_render_escapes_label_values_and_formats_specials():
    fam = Family("taq_x", "gauge").add(
        float("nan"), {"k": 'a"b\\c\nd'}
    )
    text = render_openmetrics([fam])
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    assert "NaN" in text


def test_parse_round_trips_rendered_output():
    families = [
        Family("taq_jobs", "gauge", help="jobs").add(3, {"state": "pending"}),
        Family("taq_hits", "counter").add(7, {"kind": "dir"}),
        Family("taq_run", "info").add(1, {"seed": "1"}),
    ]
    text = render_openmetrics(families)
    assert validate_openmetrics(text) == []
    parsed = parse_openmetrics(text)
    assert parsed["taq_jobs"]["type"] == "gauge"
    samples = parsed["taq_jobs"]["samples"]
    assert samples[0]["labels"] == {"state": "pending"}
    assert samples[0]["value"] == 3.0
    assert parsed["taq_hits"]["samples"][0]["suffix"] == "_total"


@pytest.mark.parametrize(
    "bad, problem",
    [
        ("taq_x 1\n# EOF\n", "no # TYPE"),
        ("# TYPE taq_x gauge\ntaq_x 1\n", "EOF"),
        ("# TYPE taq_x gauge\n# TYPE taq_x gauge\ntaq_x 1\n# EOF\n",
         "declared twice"),
        ("# TYPE taq_x counter\ntaq_x 1\n# EOF\n", "not allowed"),
    ],
)
def test_validate_flags_malformed_documents(bad, problem):
    problems = validate_openmetrics(bad)
    assert problems, f"expected problems for {bad!r}"
    assert any(problem in p for p in problems)


def test_families_from_registry_live_values():
    registry = MetricsRegistry()
    registry.counter("queue.drops").inc(5)
    registry.gauge("queue.depth", lambda: 17.0)
    series = registry.time_series("link.util")
    series.append(1.0, 0.5)
    series.append(2.0, 0.75)
    text = render_openmetrics(families_from_registry(registry))
    assert validate_openmetrics(text) == []
    assert "taq_queue_drops_total 5" in text
    assert "taq_queue_depth 17" in text
    # Series export their latest sample as a _last gauge.
    assert "taq_link_util_last 0.75" in text


def test_families_from_metrics_doc_summarizes_histograms():
    registry = MetricsRegistry()
    hist = registry.histogram("queue.delay")
    for v in (1.0, 2.0, 3.0, 4.0):
        hist.observe(v)
    doc = {
        "counters": {"drops": 2},
        "histograms": {"queue.delay": registry.histograms["queue.delay"].summary()},
        "series": {},
    }
    text = render_openmetrics(families_from_metrics_doc(doc))
    assert validate_openmetrics(text) == []
    assert "taq_queue_delay_count 4" in text
    assert 'quantile="0.5"' in text


def test_bundle_openmetrics_round_trip(tmp_path):
    from repro.obs.telemetry import Telemetry

    out = tmp_path / "bundle"
    telemetry = Telemetry(str(out))
    telemetry.registry.counter("queue.drops").inc(9)
    telemetry.finalize(None, run_id="r1", seed=3, duration=1.0)
    text = bundle_openmetrics(str(out))
    assert validate_openmetrics(text) == []
    parsed = parse_openmetrics(text)
    info = parsed["taq_run"]["samples"][0]
    assert info["labels"]["run_id"] == "r1"
    assert info["labels"]["seed"] == "3"
    assert parsed["taq_queue_drops"]["samples"][0]["value"] == 9.0


def test_bundle_openmetrics_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        bundle_openmetrics(str(tmp_path / "nope"))


def test_content_type_constant():
    assert "openmetrics-text" in OPENMETRICS_CONTENT_TYPE
    assert "version=1.0.0" in OPENMETRICS_CONTENT_TYPE
