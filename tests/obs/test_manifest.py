"""RunManifest v4: timing + backend fields, schema compatibility,
diff rules."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.obs import diff_manifests, load_manifest
from repro.obs import manifest as manifest_mod
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, RunManifest, build_manifest


def test_schema_is_v4():
    assert MANIFEST_SCHEMA_VERSION == 4


def test_backend_defaults_to_packet():
    manifest = build_manifest("run-b", 7)
    assert manifest.backend == {"kind": "packet"}
    fluid = build_manifest("run-f", 7, backend={"kind": "fluid"})
    assert fluid.backend == {"kind": "fluid"}


def test_build_manifest_autofills_peak_rss_and_source():
    manifest = build_manifest("run-a", 7, wall_time_s=1.5)
    assert manifest.schema_version == 4
    assert manifest.wall_time_s == 1.5
    assert manifest.peak_rss_bytes > 0  # read from the live process
    assert len(manifest.source_hash) == 64
    explicit = build_manifest("run-b", 7, peak_rss_bytes=12345)
    assert explicit.peak_rss_bytes == 12345


def test_round_trip_preserves_timing_fields(tmp_path):
    manifest = build_manifest("run-rt", 3, duration=10.0, wall_time_s=2.25)
    path = str(tmp_path / "manifest.json")
    manifest.write(path)
    loaded = load_manifest(path)
    assert loaded == manifest
    assert loaded.wall_time_s == 2.25
    assert loaded.peak_rss_bytes == manifest.peak_rss_bytes


def test_load_manifest_accepts_v2_documents(tmp_path):
    """Bundles written before this schema bump (no wall_time_s /
    peak_rss_bytes, or no peak_rss_bytes only) must keep loading, with
    the missing fields at their zero defaults."""
    v2 = {
        "schema": "repro.obs.manifest",
        "schema_version": 2,
        "run_id": "old-run",
        "seed": 5,
        "topology": {"capacity_bps": 200000.0},
        "qdisc": {"kind": "taq"},
        "scenario": {},
        "duration": 30.0,
        "event_count": 1000,
        "trace_events": 50,
        "sample_interval": 1.0,
        "source_hash": "ab" * 32,
        "created_unix": 1700000000.0,
    }
    path = tmp_path / "v2.json"
    path.write_text(json.dumps(v2))
    manifest = load_manifest(str(path))
    assert manifest.run_id == "old-run"
    assert manifest.schema_version == 2
    assert manifest.peak_rss_bytes == 0
    assert manifest.wall_time_s == 0.0
    assert manifest.event_count == 1000
    # Pre-v4 bundles carry no backend field: packet by definition.
    assert manifest.backend == {"kind": "packet"}


def test_load_manifest_rejects_newer_schema(tmp_path):
    doc = {
        "schema": "repro.obs.manifest",
        "schema_version": MANIFEST_SCHEMA_VERSION + 1,
        "run_id": "future",
        "seed": 1,
    }
    path = tmp_path / "future.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="newer than supported"):
        load_manifest(str(path))


def test_diff_ignores_timing_and_identity_fields():
    a = build_manifest("run-a", 9, duration=30.0, wall_time_s=1.0)
    b = dataclasses.replace(
        a,
        run_id="run-b",
        wall_time_s=99.0,
        peak_rss_bytes=a.peak_rss_bytes + 1_000_000,
        created_unix=a.created_unix + 3600,
    )
    assert diff_manifests(a, b) == {}


def test_diff_reports_substantive_differences():
    a = build_manifest("run-a", 9, qdisc={"kind": "taq"}, duration=30.0)
    b = dataclasses.replace(a, seed=10, qdisc={"kind": "droptail"})
    diff = diff_manifests(a, b)
    assert diff["seed"] == (9, 10)
    assert diff["qdisc.kind"] == ("taq", "droptail")
    assert "wall_time_s" not in diff


def test_diff_surfaces_backend_changes_with_dotted_paths():
    """A packet-vs-fluid pair must report the backend mismatch as a
    dotted path, not hide it or dump whole dicts."""
    a = build_manifest("run-a", 9, backend={"kind": "packet"})
    b = dataclasses.replace(a, backend={"kind": "fluid", "rtt_buckets": 4})
    diff = diff_manifests(a, b)
    assert diff["backend.kind"] == ("packet", "fluid")
    assert diff["backend.rtt_buckets"] == (manifest_mod.MISSING, 4)
    assert "backend" not in diff  # only leaves, never whole documents


def test_diff_ignores_schema_version():
    a = build_manifest("run-a", 9)
    b = dataclasses.replace(a, run_id="run-b", schema_version=3)
    assert diff_manifests(a, b) == {}


def test_manifest_json_payload_shape():
    manifest = build_manifest("run-j", 2)
    payload = json.loads(manifest.to_json())
    assert payload["schema"] == "repro.obs.manifest"
    for key in ("wall_time_s", "peak_rss_bytes", "schema_version"):
        assert key in payload
    assert set(payload) == {"schema"} | {
        f.name for f in dataclasses.fields(RunManifest)
    }
