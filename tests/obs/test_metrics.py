"""Unit tests for the metrics registry and its JSONL persistence."""

import io

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    load_metrics_jsonl,
)


class TestCounter:
    def test_inc_default_and_amount(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_set_counter_imports_component_total(self):
        registry = MetricsRegistry()
        registry.set_counter("q.enqueued", 123)
        assert registry.counter("q.enqueued").value == 123


class TestGauge:
    def test_reads_live_value(self):
        registry = MetricsRegistry()
        box = {"v": 1.0}
        gauge = registry.gauge("g", lambda: box["v"])
        assert gauge.read() == 1.0
        box["v"] = 7.5
        assert gauge.read() == 7.5

    def test_sample_gauges_appends_to_matching_series(self):
        registry = MetricsRegistry()
        box = {"v": 2.0}
        registry.gauge("g", lambda: box["v"])
        registry.sample_gauges(1.0)
        box["v"] = 3.0
        registry.sample_gauges(2.0)
        assert registry.time_series("g").samples == [(1.0, 2.0), (2.0, 3.0)]


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["mean"] == pytest.approx(50.5)
        assert 45 <= summary["p50"] <= 55
        assert summary["p95"] >= 90

    def test_reservoir_is_deterministic(self):
        a, b = Histogram("h"), Histogram("h")
        for value in range(10_000):
            a.observe(float(value))
            b.observe(float(value))
        assert a.summary() == b.summary()


class TestTimeSeries:
    def test_summary_includes_last(self):
        series = TimeSeries("s")
        series.append(0.0, 1.0)
        series.append(1.0, 3.0)
        summary = series.summary()
        assert summary["count"] == 2
        assert summary["last"] == 3.0


class TestJsonlRoundTrip:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("drops").inc(7)
        histogram = registry.histogram("delay")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        series = registry.time_series("depth")
        series.append(1.0, 4.0)
        series.append(2.0, 6.0)
        return registry

    def test_round_trip(self):
        registry = self.build()
        buffer = io.StringIO("\n".join(registry.to_jsonl()))
        loaded = load_metrics_jsonl(buffer)
        assert loaded["counters"]["drops"] == 7
        assert loaded["histograms"]["delay"]["count"] == 3
        assert loaded["series"]["depth"] == [(1.0, 4.0), (2.0, 6.0)]

    def test_write_jsonl_to_path(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        self.build().write_jsonl(str(path))
        loaded = load_metrics_jsonl(str(path))
        assert loaded["counters"]["drops"] == 7

    def test_newer_schema_rejected(self):
        newer = io.StringIO(
            '{"type":"meta","schema":"repro.obs.metrics","version":%d}\n'
            % (METRICS_SCHEMA_VERSION + 1)
        )
        with pytest.raises(ValueError):
            load_metrics_jsonl(newer)

    def test_unknown_record_types_skipped(self):
        buffer = io.StringIO(
            '{"type":"meta","schema":"repro.obs.metrics","version":1}\n'
            '{"type":"hologram","name":"x"}\n'
            '{"type":"counter","name":"c","value":2}\n'
        )
        loaded = load_metrics_jsonl(buffer)
        assert loaded["counters"] == {"c": 2}

    def test_summary_is_deterministic(self):
        assert self.build().summary() == self.build().summary()
