"""``taq-obs`` end to end, plus the recording entry points around it.

One small congested scenario is traced once per module and inspected
through every subcommand (flows / timeline / critical-path), from both
a bare ``spans.jsonl`` file and a telemetry bundle directory.  The
``tail`` subcommand is driven against a hand-written bus directory and
against a real ``--bus-dir``-armed two-job sweep.  The recording entry
points — ``taq-experiments scenario --spans`` and ``Telemetry(spans=)``
— are covered here too, since taq-obs is their consumer.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.experiments.cli import main as experiments_main
from repro.obs.cli import main as obs_main
from repro.obs.spans import SpanRecorder, recording, save_spans
from repro.obs.telemetry import SPANS_NAME, Telemetry
from repro.parallel.bus import ProgressBus, point_key

SCENARIO = {
    "name": "obs-cli",
    "seed": 11,
    "duration": 30.0,
    "topology": {"capacity_bps": 400_000, "rtt": 0.2, "pkt_size": 200},
    "queue": {"kind": "taq"},
    "workloads": [
        {"type": "bulk", "n_flows": 8},
        {"type": "short", "lengths": [5, 9, 13], "start_time": 10.0},
    ],
}


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    spec = ScenarioSpec.from_document(SCENARIO)
    with recording() as recorder:
        built = build_simulation(spec)
        built.run()
    path = tmp_path_factory.mktemp("trace") / "spans.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        save_spans(recorder.spans, handle)
    return str(path)


class TestFlows:
    def test_lists_flows_slowest_first(self, trace_file, capsys):
        assert obs_main(["flows", trace_file]) == 0
        out = capsys.readouterr().out
        assert "flows traced (slowest first)" in out
        assert "sojourn" in out

    def test_top_limits_rows(self, trace_file, capsys):
        assert obs_main(["flows", trace_file, "--top", "2"]) == 0
        assert "more" in capsys.readouterr().out


class TestTimeline:
    def test_worst_flow_is_the_default(self, trace_file, capsys):
        assert obs_main(["timeline", trace_file]) == 0
        out = capsys.readouterr().out
        assert "sojourn=" in out
        assert "|" in out

    def test_explicit_flow(self, trace_file, capsys):
        assert obs_main(["timeline", trace_file, "--flow", "0"]) == 0
        assert "flow 0" in capsys.readouterr().out


class TestCriticalPath:
    def test_attributes_the_worst_flow(self, trace_file, capsys):
        assert obs_main(["critical-path", trace_file, "--worst"]) == 0
        out = capsys.readouterr().out
        assert "where the time went:" in out
        assert "attributed to causes:" in out
        assert "transfer" in out

    def test_unknown_flow_exits_with_an_error(self, trace_file):
        with pytest.raises(SystemExit):
            obs_main(["critical-path", trace_file, "--flow", "424242"])


class TestTraceLoading:
    def test_bundle_directory_resolves_spans_jsonl(self, trace_file, tmp_path,
                                                   capsys):
        bundle = tmp_path / "bundle"
        bundle.mkdir()
        with open(trace_file, encoding="utf-8") as handle:
            (bundle / SPANS_NAME).write_text(handle.read(), encoding="utf-8")
        assert obs_main(["flows", str(bundle)]) == 0
        assert "flows traced" in capsys.readouterr().out

    def test_missing_trace_exits_with_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no span trace"):
            obs_main(["flows", str(tmp_path / "nope.jsonl")])


class TestTail:
    def _write_bus(self, bus_dir, done, total):
        bus = ProgressBus(str(bus_dir))
        bus.announce(total, "fig02")
        for index in range(total):
            key = point_key(index, f"x={index}")
            bus.emit(key, "start", pid=1)
            if index < done:
                bus.emit(key, "done", wall=1.0)

    def test_once_renders_a_single_frame(self, tmp_path, capsys):
        self._write_bus(tmp_path, done=1, total=3)
        assert obs_main(["tail", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "fig02: 1/3 done" in out
        assert out.count("fig02:") == 1

    def test_exits_when_the_sweep_completes(self, tmp_path, capsys):
        self._write_bus(tmp_path, done=2, total=2)
        # No --once: completion itself must terminate the loop.
        assert obs_main(["tail", str(tmp_path), "--interval", "0.01"]) == 0
        assert "2/2 done" in capsys.readouterr().out

    def test_deadline_bounds_an_idle_tail(self, tmp_path, capsys):
        self._write_bus(tmp_path, done=0, total=2)
        assert obs_main(["tail", str(tmp_path), "--interval", "0.01",
                         "--for", "0.05"]) == 0
        assert "0/2 done" in capsys.readouterr().out


class TestLiveSweepTail:
    def test_armed_two_job_sweep_is_tailable(self, tmp_path, capsys,
                                             monkeypatch):
        """The acceptance path: a jobs=2 sweep with --bus-dir leaves a
        bus that taq-obs tail renders with every point accounted for."""
        # --bus-dir exports TAQ_OBS_BUS; seed the key through monkeypatch
        # so the export is rolled back after the test.
        monkeypatch.setenv("TAQ_OBS_BUS", "placeholder")
        bus_dir = str(tmp_path / "bus")
        scenarios = []
        for index in range(2):
            document = dict(SCENARIO, name=f"pt{index}", duration=2.0,
                            seed=index + 1)
            path = tmp_path / f"pt{index}.json"
            path.write_text(json.dumps(document), encoding="utf-8")
            scenarios.append(str(path))
        code = experiments_main(
            ["scenario", *scenarios, "--jobs", "2", "--bus-dir", bus_dir]
        )
        capsys.readouterr()  # drop the outcome tables
        assert code == 0
        assert obs_main(["tail", bus_dir, "--once"]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out
        assert "p000-pt0" in out and "p001-pt1" in out

    def test_bus_dir_flag_sets_the_env_for_workers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TAQ_OBS_BUS", "placeholder")
        bus_dir = str(tmp_path / "bus")
        document = dict(SCENARIO, duration=1.0)
        path = tmp_path / "one.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        experiments_main(["scenario", str(path), "--bus-dir", bus_dir])
        assert os.environ.get("TAQ_OBS_BUS") == bus_dir


class TestExperimentsSpansFlag:
    def test_scenario_spans_records_and_reports(self, tmp_path, capsys):
        document = dict(SCENARIO, duration=5.0)
        scenario = tmp_path / "scenario.json"
        scenario.write_text(json.dumps(document), encoding="utf-8")
        out_path = tmp_path / "spans.jsonl"
        code = experiments_main(
            ["scenario", str(scenario), "--spans", str(out_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out_path.is_file()
        assert "span trace:" in out
        assert "streaming stats over" in out
        # The trace the flag wrote is inspectable end to end.
        assert obs_main(["flows", str(out_path)]) == 0

    def test_spans_with_many_files_is_rejected(self, tmp_path, capsys):
        document = dict(SCENARIO, duration=1.0)
        paths = []
        for index in range(2):
            path = tmp_path / f"s{index}.json"
            path.write_text(json.dumps(document), encoding="utf-8")
            paths.append(str(path))
        code = experiments_main(
            ["scenario", *paths, "--spans", str(tmp_path / "out.jsonl")]
        )
        assert code == 2
        assert "single file" in capsys.readouterr().err


FLUID_SCENARIO = {
    "name": "obs-cli-fluid",
    "seed": 1,
    "duration": 30.0,
    "topology": {"type": "dumbbell", "capacity_bps": 2_000_000,
                 "rtt": 0.1, "pkt_size": 1000},
    "queue": {"kind": "red", "buffer_rtts": 2.0,
              "min_th": 10, "max_th": 14, "max_p": 1.0, "weight": 0.0005},
    "workloads": [{"type": "bulk", "n_flows": 4, "extra_rtt_max": 0}],
    "backend": {"kind": "fluid"},
}


class TestExportAndStability:
    def test_telemetry_dir_bundles_then_export_round_trips(self, tmp_path,
                                                           capsys):
        """scenario --telemetry-dir writes one bundle per scenario, and
        taq-obs export renders it as well-formed OpenMetrics."""
        from repro.obs.export import validate_openmetrics

        document = dict(SCENARIO, duration=5.0)
        scenario = tmp_path / "scenario.json"
        scenario.write_text(json.dumps(document), encoding="utf-8")
        tele = tmp_path / "tele"
        code = experiments_main(
            ["scenario", str(scenario), "--telemetry-dir", str(tele)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry bundles under" in out
        bundle = tele / "obs-cli"
        assert (bundle / "metrics.jsonl").is_file()

        assert obs_main(["export", str(bundle)]) == 0
        text = capsys.readouterr().out
        assert validate_openmetrics(text) == []
        assert "taq_run_info" in text
        assert text.rstrip().endswith("# EOF")

        out_file = tmp_path / "metrics.om"
        assert obs_main(["export", str(bundle), "--out", str(out_file)]) == 0
        assert validate_openmetrics(out_file.read_text()) == []

    def test_stability_on_fluid_bundle_and_scenario_file(self, tmp_path,
                                                         capsys):
        scenario = tmp_path / "fluid.json"
        scenario.write_text(json.dumps(FLUID_SCENARIO), encoding="utf-8")
        tele = tmp_path / "tele"
        code = experiments_main(
            ["scenario", str(scenario), "--telemetry-dir", str(tele)]
        )
        capsys.readouterr()
        assert code == 0
        bundle = tele / "obs-cli-fluid"

        # Bundle directory: re-analyzes the recorded trajectory.
        assert obs_main(["stability", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "limit-cycle" in out
        assert "Reynier" in out

        # Scenario file: runs the fluid model and analyzes the result.
        assert obs_main(["stability", str(scenario)]) == 0
        assert "limit-cycle" in capsys.readouterr().out

    def test_stability_rejects_non_fluid_target(self, tmp_path):
        bogus = tmp_path / "nope"
        with pytest.raises(SystemExit):
            obs_main(["stability", str(bogus)])


class TestTelemetrySpans:
    def test_finalize_writes_spans_jsonl_and_summary_rolls_up(self, tmp_path):
        recorder = SpanRecorder()
        # Long enough for the short flows (start at 10s) to complete, so
        # critical-path --worst has a closed flow span to pick.
        spec = ScenarioSpec.from_document(dict(SCENARIO, duration=20.0))
        with recording(recorder):
            built = build_simulation(spec)
            built.run()
        out = str(tmp_path / "bundle")
        telemetry = Telemetry(out_dir=out, sample_interval=0, spans=recorder)
        telemetry.finalize(built.sim, run_id="spans-bundle", seed=11)
        assert os.path.isfile(os.path.join(out, SPANS_NAME))
        assert telemetry.summary()["spans"]["spans"] == len(recorder.spans)
        # taq-obs accepts the bundle directory directly.
        assert obs_main(["critical-path", out, "--worst"]) == 0
