"""Golden-text rendering for ``repro.obs.report``.

The report is a human contract: experiment writeups and CI logs quote
it verbatim, so its text layout is pinned exactly (charts included) for
a small deterministic telemetry bundle.  The manifest header line
embeds the source hash, which legitimately changes every commit — it is
matched by pattern, everything after it byte-for-byte.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys

import pytest

from repro.obs import Telemetry
from repro.obs.report import (
    main,
    render_run_report,
    render_telemetry_report,
    run_report_payload,
)

#: Everything the report renders below the manifest line, pinned.
GOLDEN_BODY = """\
events: drop=3, rto=1

top droppers (packets dropped, top 10):
flow 2  ################################################## 2
flow 5  ######################### 1

RTO firings per flow (top 10):
flow 2  ################################################## 1

queue.depth: min=0, p50=4, p95=9, p99=9, max=9
pkts
         9 |                           o
       8.4 |
       7.8 |
       7.2 |                                    o
       6.6 |
         6 |
       5.4 |
       4.8 |                  o
       4.2 |                                             o
       3.6 |
         3 |
       2.4 |
       1.8 |         o                                            o
       1.2 |                                                               o
       0.6 |
         0 |o
           +----------------------------------------------------------------
            1                  sim time (s)                  8
            o queue.depth"""

MANIFEST_LINE = re.compile(
    r"^run golden: seed=9 duration=40s events=0 source=[0-9a-f]{12}$"
)


def _build_telemetry(out_dir=None) -> Telemetry:
    telemetry = Telemetry(out_dir=out_dir)
    telemetry.emit("drop", 1.0, flow_id=2, pkt="data", seq=0)
    telemetry.emit("drop", 2.0, flow_id=2, pkt="data", seq=1)
    telemetry.emit("drop", 2.5, flow_id=5, pkt="data", seq=3)
    telemetry.emit("rto", 3.0, flow_id=2, backoff=1, rto=2.0)
    series = telemetry.registry.time_series("queue.depth")
    for second, depth in enumerate([0, 2, 5, 9, 7, 4, 2, 1], start=1):
        series.append(float(second), float(depth))
    telemetry.finalize(run_id="golden", seed=9, duration=40.0)
    return telemetry


@pytest.fixture()
def bundle_dir(tmp_path):
    out = str(tmp_path / "bundle")
    _build_telemetry(out_dir=out)
    return out


def _split(report: str):
    """Header line, plus the body with chart padding trailing spaces
    stripped (so the golden constant survives editors that trim them)."""
    header, _, body = report.partition("\n")
    return header, "\n".join(line.rstrip() for line in body.splitlines())


def test_render_telemetry_report_matches_golden():
    header, body = _split(render_telemetry_report(_build_telemetry()))
    assert MANIFEST_LINE.match(header), header
    assert body == GOLDEN_BODY


def test_render_run_report_matches_golden(bundle_dir):
    header, body = _split(render_run_report(bundle_dir))
    assert MANIFEST_LINE.match(header), header
    assert body == GOLDEN_BODY


def test_live_and_persisted_reports_agree(bundle_dir):
    # The bundle round-trip (JSONL out, JSONL in) loses nothing the
    # report shows: both paths render the identical text.
    assert render_run_report(bundle_dir) == render_telemetry_report(
        _build_telemetry()
    )


def test_top_n_truncates_charts():
    telemetry = Telemetry()
    for flow in range(6):
        telemetry.emit("drop", 1.0 + flow, flow_id=flow, pkt="data", seq=0)
    telemetry.finalize(run_id="top", seed=1, duration=5.0)
    report = render_telemetry_report(telemetry, top_n=2)
    assert "top droppers (packets dropped, top 2):" in report
    # 6 flows dropped, only 2 rows chart.
    assert report.count("flow ") == 2


def test_report_main_in_process(bundle_dir, capsys):
    assert main([bundle_dir]) == 0
    out = capsys.readouterr().out
    assert "events: drop=3, rto=1" in out
    assert "queue.depth" in out


def test_report_cli_module_smoke(bundle_dir):
    """``python -m repro.obs.report BUNDLE`` — the documented one-liner."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", bundle_dir, "--top", "5"],
        capture_output=True,
        text=True,
        env=dict(os.environ),
    )
    assert result.returncode == 0, result.stderr
    assert "events: drop=3, rto=1" in result.stdout
    assert "top droppers (packets dropped, top 5):" in result.stdout


# ----------------------------------------------------------------------
# --format json: the machine-readable counterpart
# ----------------------------------------------------------------------
def test_run_report_payload_mirrors_the_text_report(bundle_dir):
    payload = run_report_payload(bundle_dir)
    assert payload["manifest"]["run_id"] == "golden"
    assert payload["manifest"]["seed"] == 9
    assert payload["manifest"]["duration"] == 40.0
    assert payload["trace"]["events"] == {"drop": 3, "rto": 1}
    assert payload["trace"]["truncated"] is False
    assert payload["trace"]["top_droppers"] == {"flow 2": 2.0, "flow 5": 1.0}
    assert payload["trace"]["top_rto"] == {"flow 2": 1.0}
    depth = payload["series"]["queue.depth"]
    assert depth["min"] == 0.0 and depth["max"] == 9.0 and depth["p50"] == 4.0


def test_run_report_payload_respects_top_n(bundle_dir):
    payload = run_report_payload(bundle_dir, top_n=1)
    assert list(payload["trace"]["top_droppers"]) == ["flow 2"]


def test_report_main_json_format(bundle_dir, capsys):
    assert main([bundle_dir, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == run_report_payload(bundle_dir)
    # And it is genuinely machine-readable: stable key order.
    assert json.dumps(payload, indent=2, sort_keys=True)


def test_report_cli_json_smoke(bundle_dir):
    result = subprocess.run(
        [sys.executable, "-m", "repro.obs.report", bundle_dir,
         "--format", "json"],
        capture_output=True,
        text=True,
        env=dict(os.environ),
    )
    assert result.returncode == 0, result.stderr
    payload = json.loads(result.stdout)
    assert payload["manifest"]["run_id"] == "golden"
