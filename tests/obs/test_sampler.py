"""The gauge sampler: deterministic instants, ground-truth values."""

import pytest

from repro.net.packet import DATA, Packet
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.queues.droptail import DropTailQueue
from repro.sim.simulator import Simulator


def test_samples_at_exact_intervals():
    sim = Simulator()
    registry = MetricsRegistry()
    box = {"v": 0.0}
    registry.gauge("g", lambda: box["v"])
    sampler = Sampler(sim, registry, interval=0.5)
    sampler.start()
    sim.run(until=2.0)
    times = [t for t, _ in registry.time_series("g").samples]
    assert times == [0.5, 1.0, 1.5, 2.0]
    assert sampler.samples_taken == 4


def test_queue_depth_samples_match_len_queue_ground_truth():
    # Drive a queue directly from scheduled events and check the
    # sampled depth against len(queue) recorded at the same instants.
    sim = Simulator()
    queue = DropTailQueue(capacity_pkts=64)
    registry = MetricsRegistry()
    registry.gauge("queue.depth", lambda: float(len(queue)))
    truth = []

    def arrive(n):
        for i in range(n):
            queue.enqueue(Packet(1, DATA, seq=i, size=500), sim.now)

    def drain(n):
        for _ in range(n):
            queue.dequeue(sim.now)

    def record_truth():
        truth.append((sim.now, float(len(queue))))

    sim.schedule(0.4, arrive, (5,))
    sim.schedule(1.2, arrive, (3,))
    sim.schedule(1.7, drain, (6,))
    sim.schedule(2.6, drain, (10,))
    # Ground truth observers at the exact sampling instants; scheduled
    # first so they run before the sampler's same-time tick would — but
    # depth only changes at 0.4/1.2/1.7/2.6, so ordering cannot matter.
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, record_truth)

    sampler = Sampler(sim, registry, interval=1.0)
    sampler.start()
    sim.run(until=3.0)
    assert registry.time_series("queue.depth").samples == truth
    assert truth == [(1.0, 5.0), (2.0, 2.0), (3.0, 0.0)]


def test_stop_halts_sampling():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.gauge("g", lambda: 1.0)
    sampler = Sampler(sim, registry, interval=1.0)
    sampler.start()
    sim.run(until=2.0)
    sampler.stop()
    sim.run(until=10.0)
    assert len(registry.time_series("g").samples) == 2


def test_start_is_idempotent():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.gauge("g", lambda: 1.0)
    sampler = Sampler(sim, registry, interval=1.0)
    sampler.start()
    sampler.start()
    sim.run(until=3.0)
    assert len(registry.time_series("g").samples) == 3


def test_non_positive_interval_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Sampler(sim, MetricsRegistry(), interval=0.0)
