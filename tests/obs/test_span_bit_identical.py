"""An armed span recorder must not change what the simulation computes.

Same two-layer contract as ``tests/perf/test_bit_identical.py``, for
the tracing plane instead of the perf probe: the recorder only appends
to its own span list, so a run under ``recording()`` has to schedule
and fire exactly the same simulated event sequence as an unarmed one —
and the goldens CI pins byte-for-byte must still match their seed CSVs
when every component hook is live.  fig09 and pool run in the default
suite; the slower fast goldens ride behind ``--run-slow``.
"""

from __future__ import annotations

import importlib
import os

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.obs.spans import recording
from tests.experiments.test_goldens import EXPERIMENTS, GOLDEN_DIR

SCENARIO = {
    "name": "span-bitid",
    "seed": 11,
    "duration": 30.0,
    "topology": {"capacity_bps": 600_000, "rtt": 0.2, "pkt_size": 200},
    "queue": {"kind": "taq"},
    "workloads": [
        {"type": "bulk", "n_flows": 6},
        {"type": "short", "lengths": [5, 9, 13], "start_time": 10.0},
    ],
}


def _run(spec_document, armed):
    spec = ScenarioSpec.from_document(spec_document)
    if armed:
        with recording() as recorder:
            built = build_simulation(spec)
            built.run()
    else:
        recorder = None
        built = build_simulation(spec)
        built.run()
    return built, recorder


def test_armed_scenario_is_bit_identical():
    plain, _ = _run(SCENARIO, armed=False)
    armed, recorder = _run(SCENARIO, armed=True)
    assert recorder is not None and len(recorder.spans) > 0  # it saw the run
    assert armed.sim.processed == plain.sim.processed
    assert armed.sim.now == plain.sim.now
    assert armed.queue.enqueued == plain.queue.enqueued
    assert armed.queue.dropped == plain.queue.dropped
    assert armed.collector._slices == plain.collector._slices


def test_disarmed_components_carry_no_recorder():
    # The zero-overhead-when-off contract: every hook site is a
    # ``spans is None`` check on these attributes.
    built, _ = _run(SCENARIO, armed=False)
    assert built.sim.spans is None
    assert built.queue.spans is None
    assert built.topology.forward.spans is None
    for flow in built.all_flows():
        assert flow.sender.spans is None


def test_armed_run_arms_every_layer():
    built, recorder = _run(SCENARIO, armed=True)
    # Every layer's slot holds the ambient recorder...
    assert built.sim.spans is recorder
    assert built.queue.spans is recorder
    assert built.topology.forward.spans is recorder
    assert all(flow.sender.spans is recorder for flow in built.all_flows())
    # ... and the hooks demonstrably fired.
    kinds = recorder.counts_by_kind()
    assert kinds["run"] == 1            # simulator hook
    assert kinds["flow"] >= 6           # sender hooks
    assert kinds["pkt"] > 0             # link hooks


#: Same split as the perf bit-identity suite: the cheap goldens run by
#: default, the rest behind --run-slow.
TRACED_FAST = ("fig09", "pool")
TRACED_SLOW = ("fig10", "overlay", "rttf")


def _traced_golden_params():
    params = [pytest.param(name, id=name) for name in TRACED_FAST]
    params += [
        pytest.param(name, id=name, marks=pytest.mark.slow) for name in TRACED_SLOW
    ]
    return params


@pytest.mark.parametrize("name", _traced_golden_params())
def test_golden_experiment_unchanged_under_tracing(name):
    module = importlib.import_module(EXPERIMENTS[name])
    with recording() as recorder:
        result = module.run(module.Config())
    produced = result.table().to_csv().replace("\r\n", "\n")
    with open(os.path.join(GOLDEN_DIR, f"{name}.csv"), encoding="utf-8") as handle:
        golden = handle.read().replace("\r\n", "\n")
    assert produced == golden, (
        f"{name} diverged from its golden when run under an armed span "
        f"recorder — tracing must never alter the simulated event sequence"
    )
    # And the recorder really was armed on the experiment's simulations.
    assert len(recorder.spans) > 0
    assert recorder.counts_by_kind().get("run", 0) >= 1
