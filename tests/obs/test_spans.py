"""The span flight recorder: hooks, causal links, persistence.

Unit layer drives :class:`SpanRecorder` hooks directly with real
:class:`Packet` objects (no simulator), pinning the causal-link rules:
a retransmission's ``cause`` is the dropped segment's span, an RTO
stall spans the silence since the flow's last activity, a refused SYN
marks the following ``syn_wait`` as an admission wait.  The
integration layer runs a small congested scenario under ``recording()``
and checks the trace holds a coherent story end to end.  Persistence
tests pin the schema-versioning contract: pre-schema files load,
unknown kinds/fields ride through, newer versions refuse.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.net.packet import Packet
from repro.obs.spans import (
    SPANS_SCHEMA_VERSION,
    Span,
    SpanRecorder,
    active_recorder,
    load_spans,
    recording,
    save_spans,
)


def _span(recorder, span_id):
    return next(s for s in recorder.spans if s.id == span_id)


def _by_kind(recorder, kind):
    return [s for s in recorder.spans if s.kind == kind]


# ----------------------------------------------------------------------
# Recorder hook semantics
# ----------------------------------------------------------------------
class TestRecorderHooks:
    def test_flow_span_opens_on_first_syn_and_closes_on_done(self):
        rec = SpanRecorder()
        rec.on_packet_sent(Packet(7, "syn"), 1.0)
        (flow,) = _by_kind(rec, "flow")
        assert flow.t0 == 1.0 and flow.t1 is None
        rec.on_flow_done(7, 9.5)
        assert flow.t1 == 9.5
        assert flow.fields["outcome"] == "done"
        assert flow.duration == pytest.approx(8.5)

    def test_pkt_span_parent_is_flow_span(self):
        rec = SpanRecorder()
        pkt = Packet(3, "data", seq=4, size=200)
        rec.on_packet_sent(pkt, 2.0)
        (flow,) = _by_kind(rec, "flow")
        (span,) = _by_kind(rec, "pkt")
        assert span.parent == flow.id
        assert span.fields["seq"] == 4
        assert pkt.span_id == span.id
        assert span.stages == [["created", 2.0]]

    def test_retransmit_cause_links_to_the_drop(self):
        rec = SpanRecorder()
        first = Packet(3, "data", seq=4, size=200)
        rec.on_packet_sent(first, 1.0)
        rec.on_drop(first, 1.5)
        dropped = _span(rec, first.span_id)
        assert dropped.fields["outcome"] == "dropped"
        assert dropped.stages[-1] == ["drop", 1.5]

        rtx = Packet(3, "data", seq=4, size=200, is_retransmit=True)
        rec.on_packet_sent(rtx, 2.0)
        rtx_span = _span(rec, rtx.span_id)
        assert rtx_span.cause == dropped.id
        assert rtx_span.fields["rtx"] is True

    def test_retransmit_without_seen_drop_falls_back_to_recovery(self):
        rec = SpanRecorder()
        rec.on_packet_sent(Packet(3, "data", seq=0, size=200), 1.0)
        rec.on_rto(3, 4.0, backoff=1, rto=3.0, seq=0)
        (rto,) = _by_kind(rec, "rto")
        rtx = Packet(3, "data", seq=5, size=200, is_retransmit=True)
        rec.on_packet_sent(rtx, 4.0)  # seq 5 never dropped under our eyes
        assert _span(rec, rtx.span_id).cause == rto.id

    def test_rto_stall_spans_the_silence(self):
        rec = SpanRecorder()
        pkt = Packet(3, "data", seq=0, size=200)
        rec.on_packet_sent(pkt, 1.0)
        rec.on_drop(pkt, 1.4)  # last activity
        rec.on_rto(3, 4.4, backoff=2, rto=3.0, seq=0)
        (rto,) = _by_kind(rec, "rto")
        assert rto.t0 == 1.4 and rto.t1 == 4.4
        assert rto.fields["stall"] == pytest.approx(3.0)
        assert rto.fields["backoff"] == 2
        assert rto.cause == pkt.span_id

    def test_refused_syn_marks_the_syn_wait_as_admission(self):
        rec = SpanRecorder()
        syn = Packet(9, "syn")
        rec.on_packet_sent(syn, 0.0)
        rec.on_admission_refused(syn, 0.01)
        rec.on_drop(syn, 0.01)
        rec.on_syn_retry(9, 3.0, attempt=1, waited=3.0)
        (wait,) = _by_kind(rec, "syn_wait")
        assert wait.fields.get("refused") is True
        assert wait.t0 == 0.0 and wait.t1 == 3.0
        assert wait.cause == syn.span_id

    def test_lost_syn_wait_is_not_marked_refused(self):
        rec = SpanRecorder()
        rec.on_packet_sent(Packet(9, "syn"), 0.0)
        rec.on_syn_retry(9, 3.0, attempt=1, waited=3.0)
        (wait,) = _by_kind(rec, "syn_wait")
        assert "refused" not in wait.fields

    def test_link_stages_record_the_packet_lifecycle(self):
        rec = SpanRecorder()
        pkt = Packet(5, "data", seq=0, size=200)
        rec.on_packet_sent(pkt, 1.0)
        pkt.enqueued_at = 1.0
        rec.on_enqueue(pkt, 1.0, "forward")
        rec.on_tx_start(pkt, 1.2, "forward")
        rec.on_delivered(pkt, 1.3, last=True)
        span = _span(rec, pkt.span_id)
        assert span.stages == [
            ["created", 1.0], ["enq", 1.0, "forward"],
            ["tx", 1.2, "forward"], ["deliv", 1.3],
        ]
        assert span.fields["outcome"] == "delivered"

    def test_ack_enters_the_record_at_its_first_link(self):
        # ACKs are born in the receiver, not under a sender hook.
        rec = SpanRecorder()
        ack = Packet(5, "ack", ack_seq=3)
        rec.on_enqueue(ack, 2.0, "reverse")
        span = _span(rec, ack.span_id)
        assert span.fields["pkt"] == "ack"
        assert span.stages == [["enq", 2.0, "reverse"]]

    def test_penalty_span_links_to_latest_drop(self):
        rec = SpanRecorder()
        pkt = Packet(4, "data", seq=1, size=200)
        rec.on_packet_sent(pkt, 1.0)
        rec.on_drop(pkt, 1.1)
        rec.on_penalized(Packet(4, "data", seq=2, size=200), 1.5, recent_drops=3)
        (penalty,) = _by_kind(rec, "penalty")
        assert penalty.cause == pkt.span_id
        assert penalty.fields["recent_drops"] == 3

    def test_truncation_stops_new_spans_but_not_stage_appends(self):
        rec = SpanRecorder(limit=2)
        pkt = Packet(1, "data", seq=0, size=200)
        rec.on_packet_sent(pkt, 0.0)  # flow span + pkt span = limit
        assert len(rec.spans) == 2 and not rec.truncated
        rec.on_packet_sent(Packet(1, "data", seq=1, size=200), 0.1)
        assert len(rec.spans) == 2 and rec.truncated
        # The already-created span still completes its lifecycle.
        rec.on_delivered(pkt, 0.3, last=True)
        assert _span(rec, pkt.span_id).fields["outcome"] == "delivered"

    def test_flow_done_drops_per_flow_working_state(self):
        rec = SpanRecorder()
        pkt = Packet(2, "data", seq=0, size=200)
        rec.on_packet_sent(pkt, 0.0)
        rec.on_drop(pkt, 0.1)
        rec.on_rto(2, 1.0, backoff=1, rto=1.0, seq=0)
        rec.on_flow_done(2, 2.0)
        assert 2 not in rec._recovery
        assert 2 not in rec._last_activity
        assert 2 not in rec._last_flow_drop

    def test_summary_counts_by_kind(self):
        rec = SpanRecorder()
        rec.on_packet_sent(Packet(1, "syn"), 0.0)
        rec.on_run_end(rec.on_run_start(0.0), 5.0)
        summary = rec.summary()
        assert summary["spans"] == 3
        assert summary["by_kind"] == {"flow": 1, "pkt": 1, "run": 1}
        assert summary["truncated"] is False


# ----------------------------------------------------------------------
# Ambient arming
# ----------------------------------------------------------------------
class TestRecordingContext:
    def test_recording_sets_and_restores_the_ambient_recorder(self):
        assert active_recorder() is None
        with recording() as outer:
            assert active_recorder() is outer
            inner_rec = SpanRecorder()
            with recording(inner_rec) as inner:
                assert inner is inner_rec
                assert active_recorder() is inner_rec
            assert active_recorder() is outer
        assert active_recorder() is None

    def test_recording_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording():
                raise RuntimeError("boom")
        assert active_recorder() is None


# ----------------------------------------------------------------------
# End to end: a congested scenario tells a coherent story
# ----------------------------------------------------------------------
SCENARIO = {
    "name": "spans-e2e",
    "seed": 11,
    "duration": 30.0,
    "topology": {"capacity_bps": 400_000, "rtt": 0.2, "pkt_size": 200},
    "queue": {"kind": "taq"},
    "workloads": [
        {"type": "bulk", "n_flows": 8},
        {"type": "short", "lengths": [5, 9, 13], "start_time": 10.0},
    ],
}


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def trace(self):
        spec = ScenarioSpec.from_document(SCENARIO)
        with recording() as recorder:
            built = build_simulation(spec)
            built.run()
        return recorder

    def test_all_span_kinds_a_congested_run_produces(self, trace):
        kinds = trace.counts_by_kind()
        assert kinds["run"] == 1
        assert kinds["flow"] >= 8
        assert kinds["pkt"] > 100
        assert kinds.get("rto", 0) + kinds.get("fast_rtx", 0) > 0

    def test_every_closed_pkt_span_has_an_outcome(self, trace):
        for span in trace.spans:
            if span.kind == "pkt" and span.t1 is not None:
                assert span.fields["outcome"] in ("delivered", "dropped")

    def test_cause_links_point_at_earlier_spans(self, trace):
        ids = {span.id for span in trace.spans}
        for span in trace.spans:
            if span.cause != -1:
                assert span.cause in ids
                assert span.cause < span.id

    def test_parents_are_flow_spans_of_the_same_flow(self, trace):
        index = {span.id: span for span in trace.spans}
        for span in trace.spans:
            if span.parent != -1:
                parent = index[span.parent]
                assert parent.kind == "flow"
                assert parent.flow_id == span.flow_id

    def test_stage_times_are_monotonic(self, trace):
        for span in trace.spans:
            if span.kind != "pkt" or not span.stages:
                continue
            times = [stage[1] for stage in span.stages]
            assert times == sorted(times)


# ----------------------------------------------------------------------
# Persistence: schema-versioned JSONL with back-compat
# ----------------------------------------------------------------------
class TestPersistence:
    def _roundtrip(self, spans):
        buffer = io.StringIO()
        save_spans(spans, buffer)
        buffer.seek(0)
        return load_spans(buffer)

    def test_roundtrip_preserves_everything(self):
        rec = SpanRecorder()
        pkt = Packet(3, "data", seq=4, size=200)
        rec.on_packet_sent(pkt, 1.0)
        pkt.enqueued_at = 1.0
        rec.on_enqueue(pkt, 1.0, "forward")
        rec.on_drop(pkt, 1.5)
        rec.on_rto(3, 4.5, backoff=1, rto=3.0, seq=4)
        rec.on_flow_done(3, 5.0)
        loaded = self._roundtrip(rec.spans)
        assert len(loaded) == len(rec.spans)
        for original, copy in zip(rec.spans, loaded):
            assert (copy.id, copy.kind, copy.flow_id) == \
                (original.id, original.kind, original.flow_id)
            assert (copy.t0, copy.t1, copy.parent, copy.cause) == \
                (original.t0, original.t1, original.parent, original.cause)
            assert copy.stages == original.stages
            assert copy.fields == original.fields

    def test_header_declares_current_schema(self):
        buffer = io.StringIO()
        save_spans([], buffer)
        header = json.loads(buffer.getvalue().splitlines()[0])
        assert header == {"type": "meta", "schema": "repro.obs.spans",
                          "version": SPANS_SCHEMA_VERSION}

    def test_pre_schema_file_without_header_loads(self):
        body = '{"id":0,"kind":"flow","t0":1.0,"t1":2.0,"flow":7}\n'
        loaded = load_spans(io.StringIO(body))
        assert len(loaded) == 1
        assert loaded[0].kind == "flow" and loaded[0].flow_id == 7

    def test_unknown_kind_and_extra_fields_ride_through(self):
        body = (
            '{"type":"meta","schema":"repro.obs.spans","version":1}\n'
            '{"id":0,"kind":"wormhole","t0":0.0,"novel_field":42}\n'
        )
        loaded = load_spans(io.StringIO(body))
        assert loaded[0].kind == "wormhole"
        assert loaded[0].fields["novel_field"] == 42
        # And it re-serializes without loss.
        assert json.loads(loaded[0].to_json())["novel_field"] == 42

    def test_newer_schema_version_refuses(self):
        body = ('{"type":"meta","schema":"repro.obs.spans","version":%d}\n'
                % (SPANS_SCHEMA_VERSION + 1))
        with pytest.raises(ValueError, match="newer than supported"):
            load_spans(io.StringIO(body))

    def test_foreign_meta_header_refuses(self):
        body = '{"type":"meta","schema":"repro.obs.trace","version":1}\n'
        with pytest.raises(ValueError, match="not a span trace"):
            load_spans(io.StringIO(body))

    def test_blank_lines_are_tolerated(self):
        body = '\n{"id":0,"kind":"flow","t0":0.0}\n\n'
        assert len(load_spans(io.StringIO(body))) == 1

    def test_span_json_is_one_line_and_stable_keyed(self):
        span = Span(1, "rto", flow_id=3, t0=1.0, t1=2.0, backoff=2, stall=1.0)
        encoded = span.to_json()
        assert "\n" not in encoded
        assert json.loads(encoded) == {
            "id": 1, "kind": "rto", "t0": 1.0, "t1": 2.0, "flow": 3,
            "backoff": 2, "stall": 1.0,
        }
