"""Deterministic streaming percentiles (repro.obs.streamstats).

The histograms are the always-on counterpart to the bounded span
recorder, so the properties under test are exactness where promised
(count, sum, min, max, p0/p100), determinism (same observations, same
summary, independent of nothing — no sampling, no randomness), bounded
relative error for interior percentiles, and bounded memory via the
per-flow overflow bucket.
"""

from __future__ import annotations

import pytest

from repro.obs.streamstats import FlowTimings, LogHistogram, StreamingFlowStats


class TestLogHistogram:
    def test_exact_moments(self):
        hist = LogHistogram()
        for value in (0.001, 0.01, 0.1, 1.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(1.111)
        assert hist.mean == pytest.approx(1.111 / 4)
        assert hist.min == 0.001
        assert hist.max == 1.0

    def test_extreme_percentiles_are_exact(self):
        hist = LogHistogram()
        for value in (0.003, 0.7, 12.0):
            hist.observe(value)
        assert hist.percentile(0) == 0.003
        assert hist.percentile(100) == 12.0

    def test_interior_percentiles_have_bounded_relative_error(self):
        hist = LogHistogram()
        values = [0.001 * (1.1 ** i) for i in range(200)]
        for value in values:
            hist.observe(value)
        exact = sorted(values)[len(values) // 2]
        estimate = hist.percentile(50)
        # 8 bins/decade: one bin spans a 10^(1/8) ~ 1.33x ratio.
        assert exact / 1.34 <= estimate <= exact * 1.34

    def test_percentiles_clamp_into_observed_range(self):
        hist = LogHistogram()
        hist.observe(0.02)
        for q in (1, 50, 99):
            assert hist.percentile(q) == 0.02

    def test_empty_histogram_answers_zero(self):
        hist = LogHistogram()
        assert hist.count == 0
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        assert hist.summary()["count"] == 0

    def test_below_lo_lands_in_first_bin(self):
        hist = LogHistogram(lo=1e-4)
        hist.observe(1e-9)
        hist.observe(0.0)
        assert hist.counts[0] == 2
        assert hist.min == 0.0

    def test_above_range_lands_in_last_bin(self):
        hist = LogHistogram(lo=1e-4, bins_per_decade=8, decades=8)
        hist.observe(1e9)
        assert hist.counts[-1] == 1
        assert hist.percentile(100) == 1e9  # exact max still wins

    def test_determinism_same_inputs_same_summary(self):
        a, b = LogHistogram(), LogHistogram()
        values = [0.0001 * (1.07 ** i) for i in range(300)]
        for value in values:
            a.observe(value)
        for value in values:
            b.observe(value)
        assert a.summary() == b.summary()
        assert a.counts == b.counts

    def test_merge_equals_observing_everything_in_one(self):
        left, right, combined = LogHistogram(), LogHistogram(), LogHistogram()
        for i, value in enumerate(0.001 * (1.3 ** i) for i in range(40)):
            (left if i % 2 else right).observe(value)
            combined.observe(value)
        left.merge(right)
        assert left.counts == combined.counts
        assert left.count == combined.count
        assert left.total == pytest.approx(combined.total)
        assert (left.min, left.max) == (combined.min, combined.max)


class TestFlowTimings:
    def test_summary_only_reports_touched_metrics(self):
        timings = FlowTimings()
        timings.hang.observe(0.5)
        summary = timings.summary()
        assert set(summary) == {"hang"}
        assert summary["hang"]["count"] == 1


class TestStreamingFlowStats:
    def test_observations_hit_both_flow_and_total(self):
        stats = StreamingFlowStats()
        stats.observe_queue_delay(1, 0.01)
        stats.observe_hang(1, 0.5)
        stats.observe_sojourn(1, 3.0)
        assert stats.flows[1].queue_delay.count == 1
        assert stats.total.hang.max == 0.5
        assert stats.total.sojourn.count == 1

    def test_worst_flows_ranks_by_metric_max(self):
        stats = StreamingFlowStats()
        stats.observe_hang(1, 0.2)
        stats.observe_hang(2, 9.0)
        stats.observe_hang(3, 1.5)
        assert stats.worst_flows("hang", top=2) == [(2, 9.0), (3, 1.5)]

    def test_overflow_bucket_bounds_per_flow_memory(self):
        stats = StreamingFlowStats(max_flows=2)
        for flow_id in range(5):
            stats.observe_sojourn(flow_id, 1.0)
        # Two tracked flows plus the shared overflow bucket.
        assert set(stats.flows) == {0, 1, StreamingFlowStats.OVERFLOW}
        assert stats.overflowed_flows == 3
        assert stats.flows[StreamingFlowStats.OVERFLOW].sojourn.count == 3
        # Global totals still see everything.
        assert stats.total.sojourn.count == 5
        summary = stats.summary()
        assert summary["flows"] == 2
        assert summary["overflowed_flows"] == 3

    def test_overflowed_flows_never_rank_as_worst(self):
        stats = StreamingFlowStats(max_flows=1)
        stats.observe_hang(1, 0.1)
        stats.observe_hang(2, 99.0)  # folded into overflow
        assert stats.worst_flows("hang") == [(1, 0.1)]

    def test_render_is_deterministic_text(self):
        stats = StreamingFlowStats()
        stats.observe_queue_delay(1, 0.012)
        stats.observe_sojourn(1, 2.0)
        text = stats.render()
        assert text == stats.render()
        assert "queue_delay" in text and "sojourn" in text
        assert "hang" not in text  # untouched metric omitted
