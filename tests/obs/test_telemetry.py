"""End-to-end telemetry: instrumented runs, bundles, reports.

The two load-bearing guarantees:

- telemetry OFF: a sweep point is bit-identical to an uninstrumented
  one (probes never touch the RNG or the event order);
- telemetry ON: the point still measures the same numbers, and the
  bundle directory holds a loadable manifest + metrics + event trace.
"""

import dataclasses
import os

import pytest

from repro.experiments.sweeps import run_sweep_point
from repro.obs import (
    Telemetry,
    diff_manifests,
    load_manifest,
    load_metrics_jsonl,
    render_run_report,
)
from repro.obs.telemetry import EVENTS_NAME, MANIFEST_NAME, METRICS_NAME
from repro.obs.trace import load_events, summarize_events

POINT = dict(capacity_bps=200_000.0, fair_share_bps=20_000.0, duration=30.0)


@pytest.fixture(scope="module")
def taq_bundle(tmp_path_factory):
    """One instrumented TAQ point, shared across the module's tests."""
    out = tmp_path_factory.mktemp("telemetry")
    point = run_sweep_point("taq", telemetry_dir=str(out), **POINT)
    return point, point.telemetry["bundle_dir"]


def test_disabled_point_identical_to_uninstrumented(tmp_path):
    plain = run_sweep_point("droptail", **POINT)
    instrumented = run_sweep_point(
        "droptail", telemetry_dir=str(tmp_path), **POINT
    )
    a = dataclasses.asdict(plain)
    b = dataclasses.asdict(instrumented)
    assert a.pop("telemetry") is None
    assert b.pop("telemetry") is not None
    assert a == b


def test_bundle_files_exist(taq_bundle):
    _, bundle_dir = taq_bundle
    for name in (MANIFEST_NAME, METRICS_NAME, EVENTS_NAME):
        assert os.path.exists(os.path.join(bundle_dir, name))


def test_manifest_round_trip_and_diff(taq_bundle):
    point, bundle_dir = taq_bundle
    manifest = load_manifest(os.path.join(bundle_dir, MANIFEST_NAME))
    assert manifest.seed == 1
    assert manifest.qdisc["kind"] == "taq"
    assert manifest.topology["capacity_bps"] == POINT["capacity_bps"]
    assert manifest.event_count > 0
    assert len(manifest.source_hash) == 64
    # The payload's manifest dict matches the persisted file.
    assert manifest.event_count == point.telemetry["manifest"]["event_count"]
    assert diff_manifests(manifest, manifest) == {}


def test_metrics_loadable_and_consistent(taq_bundle):
    point, bundle_dir = taq_bundle
    loaded = load_metrics_jsonl(os.path.join(bundle_dir, METRICS_NAME))
    counters = loaded["counters"]
    # The queue's own totals were imported at finalize time.
    assert counters["queue.dropped"] > 0
    assert counters["sim.events_processed"] > 0
    # Drop events in the trace equal the per-kind event counter.
    assert counters["event.drop"] == point.telemetry["summary"]["trace"][
        "events"
    ].get("drop", 0)
    # Gauge series were sampled on the sim clock every second.
    depth = loaded["series"]["queue.depth"]
    assert len(depth) == int(POINT["duration"])
    assert [t for t, _ in depth] == [float(i + 1) for i in range(len(depth))]


def test_trace_loadable_and_summary_matches_payload(taq_bundle):
    point, bundle_dir = taq_bundle
    with open(os.path.join(bundle_dir, EVENTS_NAME), encoding="utf-8") as handle:
        events = load_events(handle)
    summary = summarize_events(events)
    expected = dict(point.telemetry["summary"]["trace"])
    expected.pop("truncated")
    # JSON round-trips dict keys as strings; normalize before comparing.
    for key in ("drops_by_flow", "rto_by_flow", "max_backoff_by_flow"):
        expected[key] = {int(flow): count for flow, count in expected[key].items()}
    assert summary == expected


def test_report_renders(taq_bundle):
    _, bundle_dir = taq_bundle
    report = render_run_report(bundle_dir)
    assert "events:" in report
    assert "queue.depth" in report


def test_telemetry_summary_counts_emits():
    telemetry = Telemetry()
    telemetry.emit("drop", 1.0, flow_id=2, pkt="data", seq=0)
    telemetry.emit("drop", 2.0, flow_id=2, pkt="data", seq=1)
    telemetry.emit("rto", 3.0, flow_id=2, backoff=1, rto=2.0)
    summary = telemetry.summary()
    assert summary["trace"]["events"] == {"drop": 2, "rto": 1}
    assert summary["metrics"]["counters"]["event.drop"] == 2
    assert not summary["trace"]["truncated"]


def test_finalize_without_out_dir_stays_in_memory(tmp_path):
    telemetry = Telemetry()
    telemetry.emit("drop", 1.0, flow_id=1)
    manifest = telemetry.finalize(run_id="mem", seed=7, duration=5.0)
    assert manifest.seed == 7
    assert manifest.trace_events == 1
    assert not any(tmp_path.iterdir())
