"""The structured event trace: emit, persist, reload, summarize."""

import io

import pytest

from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    EventTrace,
    TraceEvent,
    load_events,
    save_events,
    summarize_events,
)


def build_trace() -> EventTrace:
    trace = EventTrace()
    trace.emit("drop", 1.0, flow_id=3, pkt="data", seq=17)
    trace.emit("drop", 1.5, flow_id=3, pkt="data", seq=18)
    trace.emit("rto", 2.0, flow_id=3, backoff=1, rto=2.0)
    trace.emit("rto", 6.0, flow_id=3, backoff=2, rto=4.0)
    trace.emit("rto", 2.5, flow_id=4, backoff=0, rto=1.0)
    trace.emit("flow_state", 3.0, flow_id=4, prev="normal", next="loss_recovery")
    return trace


def test_round_trip_preserves_everything():
    trace = build_trace()
    buffer = io.StringIO()
    written = save_events(trace.events, buffer)
    assert written == len(trace)
    buffer.seek(0)
    loaded = load_events(buffer)
    assert len(loaded) == len(trace.events)
    for original, reloaded in zip(trace.events, loaded):
        assert reloaded.time == original.time
        assert reloaded.kind == original.kind
        assert reloaded.flow_id == original.flow_id
        assert reloaded.fields == original.fields


def test_round_trip_then_summarize():
    trace = build_trace()
    buffer = io.StringIO()
    save_events(trace.events, buffer)
    buffer.seek(0)
    summary = summarize_events(load_events(buffer))
    assert summary == summarize_events(trace.events)
    assert summary["events"] == {"drop": 2, "flow_state": 1, "rto": 3}
    assert summary["drops_by_flow"] == {3: 2}
    assert summary["rto_by_flow"] == {3: 2, 4: 1}
    assert summary["max_backoff_by_flow"] == {3: 2, 4: 0}


def test_header_written_first():
    buffer = io.StringIO()
    save_events([], buffer)
    first = buffer.getvalue().splitlines()[0]
    assert '"schema":"repro.obs.trace"' in first
    assert f'"version":{TRACE_SCHEMA_VERSION}' in first


def test_missing_header_tolerated():
    buffer = io.StringIO('{"t":1.0,"kind":"drop","flow":2}\n')
    events = load_events(buffer)
    assert len(events) == 1
    assert events[0].flow_id == 2


def test_unknown_kinds_and_fields_tolerated():
    buffer = io.StringIO(
        '{"type":"meta","schema":"repro.obs.trace","version":1}\n'
        '{"t":1.0,"kind":"quantum_flux","flow":2,"novel_field":9}\n'
    )
    events = load_events(buffer)
    assert events[0].kind == "quantum_flux"
    assert events[0].fields["novel_field"] == 9


def test_newer_schema_rejected():
    buffer = io.StringIO(
        '{"type":"meta","schema":"repro.obs.trace","version":%d}\n'
        % (TRACE_SCHEMA_VERSION + 1)
    )
    with pytest.raises(ValueError):
        load_events(buffer)


def test_wrong_schema_rejected():
    buffer = io.StringIO('{"type":"meta","schema":"somebody.else","version":1}\n')
    with pytest.raises(ValueError):
        load_events(buffer)


def test_flowless_event_omits_flow_key():
    event = TraceEvent(1.0, "drop")
    assert '"flow"' not in event.to_json()
    buffer = io.StringIO(event.to_json() + "\n")
    assert load_events(buffer)[0].flow_id == -1


def test_limit_truncates_and_flags():
    trace = EventTrace(limit=2)
    for i in range(5):
        trace.emit("drop", float(i), flow_id=1)
    assert len(trace) == 2
    assert trace.truncated


def test_counts_by_flow_filters_kind():
    trace = build_trace()
    assert trace.counts_by_flow("rto") == {3: 2, 4: 1}
    assert trace.counts_by_kind()["drop"] == 2
