"""Unit tests for the overlay substrate (lossy links, ARQ tunnel)."""

import pytest

from repro.net.packet import DATA, Packet
from repro.overlay import ArqTunnel, LossyLink, OverlayDumbbell
from repro.queues.droptail import DropTailQueue
from repro.sim.simulator import Simulator
from repro.workloads import spawn_bulk_flows


class Sink:
    def __init__(self):
        self.packets = []

    def receive(self, packet, now):
        self.packets.append((now, packet))


def make_lossy(sim, loss, capacity=1_000_000.0, delay=0.01):
    return LossyLink(
        sim, capacity, delay, DropTailQueue(1000), loss_rate=loss,
        rng=sim.rng.stream("loss"),
    )


def send_n(link, sink, n):
    for i in range(n):
        p = Packet(1, DATA, seq=i, size=500)
        p.dst = sink
        link.send(p)


# ------------------------------------------------------------ LossyLink
def test_lossless_lossy_link_delivers_everything():
    sim = Simulator(seed=1)
    sink = Sink()
    link = make_lossy(sim, 0.0)
    send_n(link, sink, 50)
    sim.run()
    assert len(sink.packets) == 50


def test_lossy_link_drops_roughly_loss_rate():
    sim = Simulator(seed=1)
    sink = Sink()
    link = make_lossy(sim, 0.2)
    send_n(link, sink, 800)  # stays within the 1000-packet buffer
    sim.run()
    delivered = len(sink.packets)
    assert 560 < delivered < 720  # ~640 expected at 20% loss
    assert link.cross_traffic_losses == 800 - delivered


def test_lossy_link_validates_loss_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        make_lossy(sim, 1.0)


# ------------------------------------------------------------ ArqTunnel
def make_tunnel(sim, loss=0.3, timeout=0.05):
    forward = make_lossy(sim, loss)
    reverse = make_lossy(sim, loss)
    return ArqTunnel(sim, forward, reverse, retransmit_timeout=timeout), forward


def test_tunnel_delivers_through_heavy_loss():
    sim = Simulator(seed=2)
    tunnel, _ = make_tunnel(sim, loss=0.3)
    sink = Sink()
    for i in range(100):
        p = Packet(1, DATA, seq=i, size=500)
        p.dst = sink
        tunnel.send(p)
    sim.run(until=30.0)
    assert len(sink.packets) == 100       # all delivered despite 30% loss
    assert tunnel.retransmissions > 10    # because the tunnel worked
    assert tunnel.exit_node.duplicates >= 0
    assert tunnel.in_flight == 0


def test_tunnel_no_duplicate_forwarding():
    sim = Simulator(seed=3)
    tunnel, _ = make_tunnel(sim, loss=0.0, timeout=0.001)  # force spurious retx
    sink = Sink()
    p = Packet(1, DATA, seq=0, size=500)
    p.dst = sink
    tunnel.send(p)
    sim.run(until=2.0)
    assert len(sink.packets) == 1
    assert tunnel.exit_node.duplicates >= 1


def test_tunnel_gives_up_eventually():
    sim = Simulator(seed=4)
    forward = make_lossy(sim, 0.0)
    # Break the ack path completely: every packet exhausts its retries.
    reverse = make_lossy(sim, 0.99)
    tunnel = ArqTunnel(sim, forward, reverse, retransmit_timeout=0.02,
                       max_retransmits=2)
    sink = Sink()
    p = Packet(1, DATA, seq=0, size=500)
    p.dst = sink
    tunnel.send(p)
    sim.run(until=5.0)
    assert tunnel.given_up == 1
    assert tunnel.in_flight == 0


def test_tunnel_preserves_destination():
    sim = Simulator(seed=5)
    tunnel, _ = make_tunnel(sim, loss=0.0)
    a, b = Sink(), Sink()
    for sink, seq in ((a, 0), (b, 1)):
        p = Packet(1, DATA, seq=seq, size=500)
        p.dst = sink
        tunnel.send(p)
    sim.run(until=1.0)
    assert len(a.packets) == 1 and a.packets[0][1].seq == 0
    assert len(b.packets) == 1 and b.packets[0][1].seq == 1


# ------------------------------------------------------ OverlayDumbbell
def test_overlay_dumbbell_modes_validate():
    sim = Simulator()
    with pytest.raises(ValueError):
        OverlayDumbbell(sim, 1_000_000, 0.2, mode="weird")


def test_clean_mode_has_no_downstream_loss():
    sim = Simulator(seed=6)
    bell = OverlayDumbbell(sim, 1_000_000, 0.1, mode="clean", underlay_loss=0.5)
    flows = spawn_bulk_flows(bell, 5, size_segments=30)
    sim.run(until=30.0)
    assert all(f.done for f in flows)
    assert bell.end_to_end_loss_rate() == 0.0


def test_raw_mode_loses_downstream():
    sim = Simulator(seed=6)
    bell = OverlayDumbbell(sim, 1_000_000, 0.1, mode="raw", underlay_loss=0.2)
    spawn_bulk_flows(bell, 5, size_segments=30)
    sim.run(until=60.0)
    assert bell.end_to_end_loss_rate() == pytest.approx(0.2, abs=0.07)


def test_overlay_mode_hides_underlay_loss_from_flows():
    sim = Simulator(seed=6)
    bell = OverlayDumbbell(sim, 1_000_000, 0.1, mode="overlay", underlay_loss=0.2)
    flows = spawn_bulk_flows(bell, 5, size_segments=30)
    sim.run(until=60.0)
    assert all(f.done for f in flows)
    assert bell.tunnel.retransmissions > 0
    # Flows saw (almost) no downstream loss: few or no sender timeouts
    # beyond the middlebox queue's own behaviour.
    assert bell.end_to_end_loss_rate() < 0.02
