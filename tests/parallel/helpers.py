"""Tiny importable point functions for the engine tests.

Worker processes resolve spec functions by dotted path, so these must
live in a real module (``tests`` is a package), not in a test body.
"""

import time


def square(x):
    return x * x


def slow_square(x, delay=0.05):
    time.sleep(delay)
    return x * x


def boom(message="boom"):
    raise RuntimeError(message)
