"""Tiny importable point functions for the engine tests.

Worker processes resolve spec functions by dotted path, so these must
live in a real module (``tests`` is a package), not in a test body.
"""

import time


def square(x):
    return x * x


def slow_square(x, delay=0.05):
    time.sleep(delay)
    return x * x


def boom(message="boom"):
    raise RuntimeError(message)


def hammer_backend(backend_spec, value, rounds, version="v1"):
    """Rewrite the canonical ``square(x=3)`` entry *rounds* times.

    Runs as the body of a child process in the concurrent-writer
    tests, so it must be importable by dotted path and build its own
    backend from the ``--cache-backend``-style string.
    """
    from repro.parallel import PointSpec, parse_backend

    backend = parse_backend(backend_spec, version=version)
    spec = PointSpec("tests.parallel.helpers:square", {"x": 3})
    for round_index in range(rounds):
        backend.put(spec, value, wall_time=0.001 * round_index)
