"""The pluggable cache backends: matrix conformance, factory, interop.

Every backend must behave identically through the CacheBackend
surface (miss -> put -> hit, stats, prune) over the same keys and the
same encoded entry bytes — that equivalence is what lets a sweep swap
``--cache-backend`` without changing results.  On top of the matrix:
the ``parse_backend`` factory grammar, dir<->http interop over one
root, and the concurrent-writer torture test (two processes hammering
one key must never expose a torn entry to a reader).
"""

from __future__ import annotations

import multiprocessing
import pickle
import sqlite3
import time

import pytest

from repro.parallel import (
    HttpCache,
    PointSpec,
    ResultCache,
    SqliteCache,
    parse_backend,
)
from repro.parallel.cache import decode_entry, encode_entry
from repro.parallel.httpstore import StoreServer
from tests.parallel.helpers import hammer_backend

SPEC = PointSpec("tests.parallel.helpers:square", {"x": 3})
OTHER = PointSpec("tests.parallel.helpers:square", {"x": 4})

BACKENDS = ("dir", "sqlite", "http")


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """One (backend, spec_text) per backend kind, torn down cleanly."""
    kind = request.param
    if kind == "dir":
        spec_text = f"dir:{tmp_path / 'cache'}"
        yield parse_backend(spec_text, version="v1"), spec_text
        return
    if kind == "sqlite":
        spec_text = f"sqlite:{tmp_path / 'cache.sqlite'}"
        yield parse_backend(spec_text, version="v1"), spec_text
        return
    server = StoreServer(root=str(tmp_path / "store"))
    server.serve_in_background()
    try:
        yield HttpCache(server.url, version="v1"), server.url
    finally:
        server.shutdown()
        server.server_close()


class TestBackendMatrix:
    def test_miss_put_hit_roundtrip(self, backend):
        cache, _ = backend
        assert cache.get(SPEC) is None
        cache.put(SPEC, {"rows": [1, 2, 3]}, wall_time=0.5)
        assert cache.get(SPEC) == ({"rows": [1, 2, 3]}, 0.5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_specs_do_not_collide(self, backend):
        cache, _ = backend
        cache.put(SPEC, 9, 0.1)
        cache.put(OTHER, 16, 0.2)
        assert cache.get(SPEC) == (9, 0.1)
        assert cache.get(OTHER) == (16, 0.2)

    def test_persists_across_instances(self, backend):
        cache, spec_text = backend
        cache.put(SPEC, 9, 0.1)
        again = parse_backend(spec_text, version="v1")
        assert again.get(SPEC) == (9, 0.1)

    def test_stats_counts_entries_and_bytes(self, backend):
        cache, _ = backend
        stats = cache.stats()
        assert stats["entries"] == 0
        assert stats["kind"] == cache.kind
        cache.put(SPEC, 9, 0.1)
        cache.put(OTHER, 16, 0.1)
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] >= 2 * len(encode_entry(9, 0.1)) - 8
        assert stats["enabled"] is True

    def test_prune_all(self, backend):
        cache, _ = backend
        cache.put(SPEC, 9, 0.1)
        cache.put(OTHER, 16, 0.1)
        assert cache.prune() == 2
        assert cache.stats()["entries"] == 0
        assert cache.get(SPEC) is None

    def test_prune_keeps_recent_entries(self, backend):
        cache, _ = backend
        cache.put(SPEC, 9, 0.1)
        assert cache.prune(older_than_s=3600.0) == 0
        assert cache.get(SPEC) == (9, 0.1)

    def test_version_change_invalidates(self, backend):
        cache, spec_text = backend
        cache.put(SPEC, 9, 0.1)
        other_version = parse_backend(spec_text, version="v2")
        assert other_version.get(SPEC) is None

    def test_describe_names_the_backend(self, backend):
        cache, _ = backend
        text = cache.describe()
        # The described string must round-trip through the factory.
        assert parse_backend(text, version="v1").kind == cache.kind


class TestSqliteDetails:
    def test_wal_mode_is_on(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.sqlite"), version="v1")
        cache.put(SPEC, 9, 0.1)
        with sqlite3.connect(cache.path) as conn:
            mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_corrupt_payload_is_a_miss_and_dropped(self, tmp_path):
        cache = SqliteCache(str(tmp_path / "c.sqlite"), version="v1")
        cache.put(SPEC, 9, 0.1)
        with sqlite3.connect(cache.path) as conn:
            conn.execute("UPDATE entries SET payload = ?", (b"not a pickle",))
        assert cache.get(SPEC) is None
        assert cache.stats()["entries"] == 0

    def test_unusable_path_disables_not_raises(self, tmp_path):
        blocker = tmp_path / "file-in-the-way"
        blocker.write_text("x")
        cache = SqliteCache(str(blocker / "c.sqlite"), version="v1")
        assert not cache.enabled
        cache.put(SPEC, 9, 0.1)
        assert cache.get(SPEC) is None


class TestHttpDetails:
    def test_unreachable_server_degrades_to_misses(self):
        cache = HttpCache("http://127.0.0.1:1", version="v1", timeout_s=0.5)
        assert cache.get(SPEC) is None
        cache.put(SPEC, 9, 0.1)
        assert cache.errors >= 2
        stats = cache.stats()
        assert stats["reachable"] is False

    def test_stats_reports_server_side_counts(self, tmp_path):
        server = StoreServer(root=str(tmp_path))
        server.serve_in_background()
        try:
            cache = HttpCache(server.url, version="v1")
            cache.put(SPEC, 9, 0.1)
            stats = cache.stats()
            assert stats["reachable"] is True
            assert stats["entries"] == 1
            assert stats["bytes"] > 0
        finally:
            server.shutdown()
            server.server_close()

    def test_server_rejects_non_key_paths(self, tmp_path):
        import urllib.error
        import urllib.request

        server = StoreServer(root=str(tmp_path))
        server.serve_in_background()
        try:
            request = urllib.request.Request(
                f"{server.url}/cache/../escape",
                headers={"Connection": "close"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 404
            err.value.close()
            request = urllib.request.Request(
                f"{server.url}/cache/nothex", data=b"x", method="PUT",
                headers={"Connection": "close"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request)
            assert err.value.code == 400
            err.value.close()
        finally:
            server.shutdown()
            server.server_close()


class TestDirHttpInterop:
    """A dir cache and an HTTP store over one root are the same cache."""

    def test_http_writes_are_dir_readable(self, tmp_path):
        server = StoreServer(root=str(tmp_path))
        server.serve_in_background()
        try:
            HttpCache(server.url, version="v1").put(SPEC, 9, 0.25)
        finally:
            server.shutdown()
            server.server_close()
        local = ResultCache(root=str(tmp_path), version="v1")
        assert local.get(SPEC) == (9, 0.25)

    def test_dir_writes_are_http_readable(self, tmp_path):
        local = ResultCache(root=str(tmp_path), version="v1")
        local.put(SPEC, {"table": [1.5, 2.5]}, 0.75)
        server = StoreServer(root=str(tmp_path))
        server.serve_in_background()
        try:
            remote = HttpCache(server.url, version="v1")
            assert remote.get(SPEC) == ({"table": [1.5, 2.5]}, 0.75)
        finally:
            server.shutdown()
            server.server_close()

    def test_served_bytes_are_the_stored_bytes(self, tmp_path):
        local = ResultCache(root=str(tmp_path), version="v1")
        local.put(SPEC, 9, 0.25)
        server = StoreServer(root=str(tmp_path))
        server.serve_in_background()
        try:
            import urllib.request

            key = local.key(SPEC)
            request = urllib.request.Request(
                f"{server.url}/cache/{key}",
                headers={"Connection": "close"},
            )
            with urllib.request.urlopen(request) as resp:
                data = resp.read()
        finally:
            server.shutdown()
            server.server_close()
        assert data == local.read_blob(key)
        assert decode_entry(data) == (9, 0.25)


class TestParseBackend:
    def test_none_and_empty_give_default_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dc"))
        for text in (None, ""):
            cache = parse_backend(text, version="v1")
            assert isinstance(cache, ResultCache)
            assert str(cache.root) == str(tmp_path / "dc")

    def test_explicit_schemes(self, tmp_path):
        assert isinstance(parse_backend(f"dir:{tmp_path}", version="v1"),
                          ResultCache)
        assert isinstance(parse_backend(f"sqlite:{tmp_path}/c.db",
                                        version="v1"), SqliteCache)
        assert isinstance(parse_backend("http://h:1", version="v1"),
                          HttpCache)
        assert isinstance(parse_backend("https://h:1", version="v1"),
                          HttpCache)

    def test_bare_path_means_dir(self, tmp_path):
        cache = parse_backend(str(tmp_path / "bare"), version="v1")
        assert isinstance(cache, ResultCache)
        assert str(cache.root) == str(tmp_path / "bare")

    def test_sqlite_without_path_is_an_error(self):
        with pytest.raises(ValueError):
            parse_backend("sqlite:")

    def test_unknown_scheme_is_an_error(self):
        with pytest.raises(ValueError):
            parse_backend("redis:localhost")

    def test_version_is_threaded_through(self, tmp_path):
        cache = parse_backend(f"dir:{tmp_path}", version="vX")
        assert cache.version == "vX"


class TestConcurrentWriters:
    """Two processes, one key, no torn reads — on every backend."""

    ROUNDS = 40
    VALUE_A = {"writer": "a", "data": list(range(300))}
    VALUE_B = {"writer": "b", "data": list(range(300, 600))}

    def _hammer(self, spec_text):
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(target=hammer_backend,
                        args=(spec_text, value, self.ROUNDS))
            for value in (self.VALUE_A, self.VALUE_B)
        ]
        for proc in writers:
            proc.start()
        reader = parse_backend(spec_text, version="v1")
        observed = 0
        reads = 0
        deadline = time.time() + 60.0
        try:
            # At least 50 reads, and keep reading while writers live.
            while reads < 50 or any(proc.is_alive() for proc in writers):
                entry = reader.get(SPEC)
                reads += 1
                if entry is not None:
                    value, wall = entry
                    # A torn read would decode to garbage or an
                    # interleaving of the two payloads; every observed
                    # entry must be exactly one writer's.
                    assert value in (self.VALUE_A, self.VALUE_B)
                    assert 0.0 <= wall < 0.001 * self.ROUNDS
                    observed += 1
                assert time.time() < deadline, "writers hung"
        finally:
            for proc in writers:
                proc.join(timeout=30.0)
        assert all(proc.exitcode == 0 for proc in writers)
        final = parse_backend(spec_text, version="v1").get(SPEC)
        assert final is not None
        assert final[0] in (self.VALUE_A, self.VALUE_B)
        assert observed > 0

    def test_dir_backend(self, tmp_path):
        self._hammer(f"dir:{tmp_path / 'cache'}")

    def test_sqlite_backend(self, tmp_path):
        self._hammer(f"sqlite:{tmp_path / 'cache.sqlite'}")

    def test_http_backend(self, tmp_path):
        server = StoreServer(root=str(tmp_path / "store"))
        server.serve_in_background()
        try:
            self._hammer(server.url)
        finally:
            server.shutdown()
            server.server_close()


class TestEntryCodec:
    def test_roundtrip(self):
        data = encode_entry({"x": [1, 2]}, 0.5)
        assert decode_entry(data) == ({"x": [1, 2]}, 0.5)

    def test_bytes_are_a_plain_pickle(self):
        # The on-disk format is exactly the historical one: a pickled
        # (value, wall_time) tuple — old caches stay readable.
        assert pickle.loads(encode_entry(9, 0.1)) == (9, 0.1)
