"""The live sweep progress bus (repro.parallel.bus) and its wiring.

Three layers: the bus primitives (keying, append/read, torn-write
tolerance, stall detection), the runner integration (an armed sweep
leaves a complete start/heartbeat/done record per point and identical
results to an unarmed one, on both execution paths), and the
ProgressPrinter's rolling-average ETA.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.parallel import ParallelRunner, PointSpec, ResultCache
from repro.parallel.bus import (
    HEARTBEAT_INTERVAL,
    STALL_INTERVALS,
    SWEEP_FILE,
    Heartbeat,
    ProgressBus,
    point_key,
    read_bus,
    render_tail,
)
from repro.parallel.runner import ProgressPrinter

SQUARE = "tests.parallel.helpers:square"
SLOW_SQUARE = "tests.parallel.helpers:slow_square"


def square_specs(values):
    return [PointSpec(SQUARE, {"x": x}, label=f"x={x}") for x in values]


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestPointKey:
    def test_stable_and_ordered(self):
        assert point_key(0, "taq load=0.4") == "p000-taq-load-0.4"
        assert point_key(12, "taq load=0.4") == "p012-taq-load-0.4"

    def test_filesystem_hostile_labels_are_slugged(self):
        key = point_key(1, "a/b\\c:d e*f")
        assert "/" not in key and "\\" not in key and "*" not in key

    def test_long_labels_truncate(self):
        assert len(point_key(1, "x" * 500)) <= 45

    def test_empty_label_falls_back(self):
        assert point_key(2, "///") == "p002-point"


class TestBusReadWrite:
    def test_events_append_and_read_back(self, tmp_path):
        bus = ProgressBus(str(tmp_path / "bus"))
        bus.announce(3, "fig02")
        key = point_key(0, "x=1")
        bus.emit(key, "start", pid=123)
        bus.emit(key, "heartbeat", elapsed=5.0)
        bus.emit(key, "done", wall=9.5)
        state = read_bus(str(tmp_path / "bus"))
        assert state["total"] == 3
        assert state["label"] == "fig02"
        point = state["points"][key]
        assert point["status"] == "done"
        assert point["wall"] == 9.5
        assert point["pid"] == 123
        assert point["elapsed"] == 5.0

    def test_cached_done_reads_as_cached(self, tmp_path):
        bus = ProgressBus(str(tmp_path))
        bus.emit("p000-a", "done", wall=1.0, cached=True)
        point = read_bus(str(tmp_path))["points"]["p000-a"]
        assert point["status"] == "cached"
        assert point["cached"] is True

    def test_torn_tail_write_is_skipped(self, tmp_path):
        bus = ProgressBus(str(tmp_path))
        key = "p000-a"
        bus.emit(key, "start", pid=1)
        with open(tmp_path / f"{key}.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"t": 1.0, "kind": "done", "wal')  # mid-append crash
        point = read_bus(str(tmp_path))["points"][key]
        assert point["status"] == "running"  # the torn line didn't count

    def test_missing_directory_reads_empty(self, tmp_path):
        state = read_bus(str(tmp_path / "nope"))
        assert state == {"total": None, "label": None, "points": {}}

    def test_sweep_header_is_not_a_point(self, tmp_path):
        bus = ProgressBus(str(tmp_path))
        bus.announce(2, "sweep")
        assert read_bus(str(tmp_path))["points"] == {}
        assert (tmp_path / SWEEP_FILE).is_file()


class TestHeartbeat:
    def test_beats_while_held_and_stops_on_exit(self, tmp_path):
        bus = ProgressBus(str(tmp_path))
        with Heartbeat(bus, "p000-a", interval=0.05):
            time.sleep(0.22)
        events = [json.loads(line) for line in
                  (tmp_path / "p000-a.jsonl").read_text().splitlines()]
        beats = [e for e in events if e["kind"] == "heartbeat"]
        assert len(beats) >= 2
        assert all(e["elapsed"] >= 0.0 for e in beats)
        count_after_exit = len(beats)
        time.sleep(0.15)
        events = [json.loads(line) for line in
                  (tmp_path / "p000-a.jsonl").read_text().splitlines()]
        assert len([e for e in events if e["kind"] == "heartbeat"]) \
            == count_after_exit

    def test_crash_path_still_stops_the_thread(self, tmp_path):
        bus = ProgressBus(str(tmp_path))
        heartbeat = None
        with pytest.raises(RuntimeError, match="point blew up"):
            with Heartbeat(bus, "p000-a", interval=0.05) as heartbeat:
                time.sleep(0.12)
                raise RuntimeError("point blew up")
        # __exit__ joined the beat thread on the exception path: no
        # lingering heartbeat outlives its point.
        assert heartbeat is not None
        assert not heartbeat.alive

    def test_stop_is_idempotent(self, tmp_path):
        bus = ProgressBus(str(tmp_path))
        heartbeat = Heartbeat(bus, "p000-a", interval=0.05)
        with heartbeat:
            assert heartbeat.alive
        assert heartbeat.stop() is True
        assert heartbeat.stop() is True
        assert not heartbeat.alive

    def test_bus_write_failure_ends_the_thread_quietly(self, tmp_path):
        class ExplodingBus(ProgressBus):
            def emit(self, key, kind, **fields):
                raise OSError("disk full")

        bus = ExplodingBus(str(tmp_path))
        with Heartbeat(bus, "p000-a", interval=0.01) as heartbeat:
            deadline = time.time() + 5.0
            while heartbeat.alive and time.time() < deadline:
                time.sleep(0.01)
            # The beat thread swallowed the OSError and exited on its
            # own rather than spewing tracebacks from a worker.
            assert not heartbeat.alive


class TestRenderTail:
    def _state(self, status, **point):
        base = {"status": status, "elapsed": 0.0, "last_seen": None,
                "wall": None, "cached": False}
        base.update(point)
        return {"total": 2, "label": "fig02", "points": {"p000-a": base}}

    def test_counts_and_rows(self):
        text = render_tail(self._state("done", wall=3.2), now=100.0)
        assert "fig02: 1/2 done, 0 running" in text
        assert "done in 3.2s" in text

    def test_running_shows_live_elapsed(self):
        text = render_tail(
            self._state("running", started=90.0, last_seen=99.0), now=100.0
        )
        assert "running   10.0s" in text
        assert "stalled?" not in text

    def test_silent_running_point_flags_stalled(self):
        silent_for = STALL_INTERVALS * HEARTBEAT_INTERVAL + 1.0
        text = render_tail(
            self._state("running", started=0.0, last_seen=0.0),
            now=silent_for,
        )
        assert "(stalled?)" in text

    def test_cached_points_count_as_finished(self):
        text = render_tail(self._state("cached", wall=1.0, cached=True),
                           now=100.0)
        assert "1/2 done" in text
        assert "cached" in text

    def test_stale_heartbeat_from_real_bus_files_renders_stalled(self, tmp_path):
        """End to end through the on-disk format: a point whose last
        heartbeat is older than STALL_INTERVALS x the heartbeat period
        must render with the stalled marker when tailed."""
        bus = ProgressBus(str(tmp_path))
        bus.announce(1, "fig02")
        key = point_key(0, "x=1")
        bus.emit(key, "start", pid=42)
        bus.emit(key, "heartbeat", elapsed=2.0)
        state = read_bus(str(tmp_path))
        last = state["points"][key]["last_seen"]
        assert last is not None
        stale_now = last + STALL_INTERVALS * HEARTBEAT_INTERVAL + 0.1
        assert "(stalled?)" in render_tail(state, now=stale_now)
        # A beat inside the window clears the marker.
        assert "(stalled?)" not in render_tail(state, now=last + 1.0)

    def test_failed_event_survives_torn_tail(self, tmp_path):
        """A crash report followed by a torn mid-append line must still
        read (and render) as failed — the torn junk is dropped, not the
        terminal state before it."""
        bus = ProgressBus(str(tmp_path))
        key = point_key(0, "x=1")
        bus.emit(key, "start", pid=7)
        bus.emit(key, "failed", error="worker died")
        with open(tmp_path / f"{key}.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"t": 99.0, "kind": "heartb')  # torn mid-append
        state = read_bus(str(tmp_path))
        point = state["points"][key]
        assert point["status"] == "failed"
        assert point["error"] == "worker died"
        text = render_tail(state, now=time.time())
        assert "failed: worker died" in text


class TestTailCli:
    def test_tail_once_renders_stalled_point(self, tmp_path, capsys, monkeypatch):
        """taq-obs tail --once on a bus whose running point went silent
        shows the stalled marker."""
        from repro.obs.cli import main

        bus = ProgressBus(str(tmp_path))
        bus.announce(1, "fig02")
        key = point_key(0, "x=1")
        bus.emit(key, "start", pid=42)
        state = read_bus(str(tmp_path))
        last = state["points"][key]["last_seen"]
        stale_now = last + STALL_INTERVALS * HEARTBEAT_INTERVAL + 5.0
        monkeypatch.setattr(time, "time", lambda: stale_now)
        assert main(["tail", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "(stalled?)" in out

    def test_tail_once_renders_failed_point_despite_torn_tail(
        self, tmp_path, capsys
    ):
        from repro.obs.cli import main

        bus = ProgressBus(str(tmp_path))
        bus.announce(1, "fig02")
        key = point_key(0, "x=1")
        bus.emit(key, "failed", error="boom")
        with open(tmp_path / f"{key}.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"t": 1.0, "kind": "done", "wal')
        assert main(["tail", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "failed: boom" in out
        assert "1 failed" in out


# ----------------------------------------------------------------------
# Runner integration: an armed sweep records every point
# ----------------------------------------------------------------------
@pytest.mark.parametrize("jobs", [1, 2])
class TestRunnerBus:
    def test_every_point_starts_and_finishes_on_the_bus(self, tmp_path, jobs):
        bus_dir = str(tmp_path / "bus")
        runner = ParallelRunner(jobs=jobs, bus_dir=bus_dir)
        results = runner.run(square_specs([5, 3, 9]))
        assert [r.value for r in results] == [25, 9, 81]
        state = read_bus(bus_dir)
        assert state["total"] == 3
        assert len(state["points"]) == 3
        for point in state["points"].values():
            assert point["status"] == "done"
            assert point["wall"] is not None

    def test_armed_results_match_unarmed(self, tmp_path, jobs):
        armed = ParallelRunner(jobs=jobs, bus_dir=str(tmp_path / "bus"))
        plain = ParallelRunner(jobs=jobs)
        values = [7, 2, 4, 6]
        assert [r.value for r in armed.run(square_specs(values))] == \
            [r.value for r in plain.run(square_specs(values))]

    def test_cache_hits_report_cached_on_the_bus(self, tmp_path, jobs):
        cache = ResultCache(root=str(tmp_path / "cache"), version="v1")
        ParallelRunner(jobs=jobs, cache=cache).run(square_specs([3, 6]))
        bus_dir = str(tmp_path / "bus")
        ParallelRunner(jobs=jobs, cache=cache, bus_dir=bus_dir).run(
            square_specs([3, 6])
        )
        state = read_bus(bus_dir)
        assert all(p["status"] == "cached" for p in state["points"].values())

    def test_tail_frame_renders_the_finished_sweep(self, tmp_path, jobs):
        bus_dir = str(tmp_path / "bus")
        ParallelRunner(jobs=jobs, bus_dir=bus_dir).run(square_specs([1, 2]))
        text = render_tail(read_bus(bus_dir))
        assert "2/2 done" in text


class TestRunnerBusArming:
    def test_unarmed_runner_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.delenv("TAQ_OBS_BUS", raising=False)
        runner = ParallelRunner(jobs=1)
        assert runner.bus_dir is None
        runner.run(square_specs([2]))
        assert list(tmp_path.iterdir()) == []

    def test_env_var_arms_the_bus(self, tmp_path, monkeypatch):
        bus_dir = str(tmp_path / "bus")
        monkeypatch.setenv("TAQ_OBS_BUS", bus_dir)
        ParallelRunner(jobs=1).run(square_specs([2]))
        state = read_bus(bus_dir)
        assert len(state["points"]) == 1

    def test_explicit_bus_dir_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("TAQ_OBS_BUS", str(tmp_path / "env-bus"))
        explicit = str(tmp_path / "explicit")
        ParallelRunner(jobs=1, bus_dir=explicit).run(square_specs([2]))
        assert len(read_bus(explicit)["points"]) == 1
        assert not (tmp_path / "env-bus").exists()


# ----------------------------------------------------------------------
# ProgressPrinter rolling-average ETA
# ----------------------------------------------------------------------
class TestRollingEta:
    def _printer(self):
        printer = ProgressPrinter("test", stream=io.StringIO())
        printer._start = 0.0
        return printer

    def test_single_completion_uses_overall_mean(self):
        printer = self._printer()
        printer._finish_times.append(2.0)
        # 1 done in 2s -> 3 remaining at 2s each.
        assert printer.eta(now=2.0, done=1, total=4) == pytest.approx(6.0)

    def test_window_tracks_recent_pace_not_the_opening_burst(self):
        printer = self._printer()
        # 8 instant cache hits, then cold points at 10s each.
        times = [0.0] * 8 + [10.0, 20.0]
        for t in times:
            printer._finish_times.append(t)
        done = len(times)
        eta = printer.eta(now=20.0, done=done, total=done + 5)
        overall_mean_eta = 20.0 / done * 5
        # The window (last 9 finishes: 0,0,10,20 -> 2.5s/pt) dominates
        # the whole-sweep mean (2.0s/pt) as cold points accumulate.
        assert eta == pytest.approx(2.5 * 5)
        assert eta != pytest.approx(overall_mean_eta)

    def test_zero_done_is_zero_eta(self):
        assert self._printer().eta(now=5.0, done=0, total=4) == 0.0

    def test_window_is_bounded(self):
        printer = self._printer()
        for t in range(100):
            printer._finish_times.append(float(t))
        assert len(printer._finish_times) == ProgressPrinter.ETA_WINDOW + 1

    def test_progress_lines_include_eta(self):
        stream = io.StringIO()
        printer = ProgressPrinter("sweep", stream=stream)
        runner = ParallelRunner(jobs=1, progress=printer)
        runner.run(square_specs([2, 3]))
        output = stream.getvalue()
        assert "eta" in output
        assert "[sweep] 2 point(s): 2 computed" in output
