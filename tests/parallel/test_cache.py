"""Cache layer: keying, hit/miss, invalidation, graceful degradation."""

import os
import pickle

import pytest

from repro.parallel import (
    PointSpec,
    ResultCache,
    code_version,
    default_cache_dir,
    spec_key,
)

SPEC = PointSpec("tests.parallel.helpers:square", {"x": 3})


def make_cache(tmp_path, version="v1"):
    return ResultCache(root=str(tmp_path / "cache"), version=version)


class TestSpecKey:
    def test_stable_across_calls(self):
        assert spec_key(SPEC, "v1") == spec_key(SPEC, "v1")

    def test_kwargs_order_irrelevant(self):
        a = PointSpec("m:f", {"x": 1, "y": 2})
        b = PointSpec("m:f", {"y": 2, "x": 1})
        assert spec_key(a, "v1") == spec_key(b, "v1")

    def test_label_excluded(self):
        a = PointSpec("m:f", {"x": 1}, label="one")
        b = PointSpec("m:f", {"x": 1}, label="other")
        assert spec_key(a, "v1") == spec_key(b, "v1")

    def test_kwargs_change_key(self):
        assert spec_key(PointSpec("m:f", {"x": 1}), "v1") != spec_key(
            PointSpec("m:f", {"x": 2}), "v1"
        )

    def test_fn_changes_key(self):
        assert spec_key(PointSpec("m:f", {"x": 1}), "v1") != spec_key(
            PointSpec("m:g", {"x": 1}), "v1"
        )

    def test_code_version_changes_key(self):
        assert spec_key(SPEC, "v1") != spec_key(SPEC, "v2")

    def test_default_version_is_source_hash(self):
        version = code_version()
        assert len(version) == 64
        assert spec_key(SPEC) == spec_key(SPEC, version)


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.get(SPEC) is None
        cache.put(SPEC, 9, wall_time=0.25)
        assert cache.get(SPEC) == (9, 0.25)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_distinct_specs_do_not_collide(self, tmp_path):
        cache = make_cache(tmp_path)
        other = PointSpec("tests.parallel.helpers:square", {"x": 4})
        cache.put(SPEC, 9, 0.1)
        cache.put(other, 16, 0.1)
        assert cache.get(SPEC) == (9, 0.1)
        assert cache.get(other) == (16, 0.1)

    def test_spec_change_invalidates(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(SPEC, 9, 0.1)
        changed = PointSpec(SPEC.fn, {"x": 3, "seed": 7})
        assert cache.get(changed) is None

    def test_code_version_change_invalidates(self, tmp_path):
        make_cache(tmp_path, version="v1").put(SPEC, 9, 0.1)
        assert make_cache(tmp_path, version="v2").get(SPEC) is None
        # The old version still sees its entry.
        assert make_cache(tmp_path, version="v1").get(SPEC) == (9, 0.1)

    def test_persists_across_instances(self, tmp_path):
        make_cache(tmp_path).put(SPEC, 9, 0.1)
        assert make_cache(tmp_path).get(SPEC) == (9, 0.1)


class TestDegradation:
    def test_unwritable_root_disables(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        cache = ResultCache(root=str(blocker / "cache"), version="v1")
        assert not cache.enabled
        # Everything stays a silent no-op miss.
        cache.put(SPEC, 9, 0.1)
        assert cache.get(SPEC) is None
        assert cache.hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(SPEC, 9, 0.1)
        path = cache._path(cache.key(SPEC))
        path.write_bytes(b"this is not a pickle")
        assert cache.get(SPEC) is None
        # The corrupt entry is cleaned up so the next put can land.
        assert not path.exists()
        cache.put(SPEC, 9, 0.2)
        assert cache.get(SPEC) == (9, 0.2)

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(SPEC, {"big": list(range(100))}, 0.1)
        path = cache._path(cache.key(SPEC))
        path.write_bytes(path.read_bytes()[:10])
        assert cache.get(SPEC) is None

    def test_unpicklable_value_disables_not_raises(self, tmp_path):
        cache = make_cache(tmp_path)
        with pytest.raises(Exception):
            pickle.dumps(lambda: None)
        cache.put(SPEC, lambda: None, 0.1)
        assert not cache.enabled


class TestDefaultCacheDir:
    """XDG base-directory compliance of the default cache location."""

    def test_repro_cache_dir_always_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/custom/cache")
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg/cache")
        assert default_cache_dir() == "/custom/cache"

    def test_xdg_cache_home_is_honoured(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/xdg/cache")
        assert default_cache_dir() == os.path.join("/xdg/cache", "repro")

    def test_relative_xdg_cache_home_is_ignored(self, monkeypatch):
        # The XDG spec: relative base-directory paths are invalid and
        # must be ignored, falling through to the default.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "relative/cache")
        expected = os.path.join(os.path.expanduser("~"), ".cache", "repro")
        assert default_cache_dir() == expected

    def test_fallback_is_dot_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        expected = os.path.join(os.path.expanduser("~"), ".cache", "repro")
        assert default_cache_dir() == expected

    def test_default_result_cache_lands_there(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "via-env"))
        cache = ResultCache(version="v1")
        assert str(cache.root) == str(tmp_path / "via-env")
