"""The --jobs/--no-cache surface of ``taq-experiments``."""

import functools

import pytest

from repro.experiments import cli
from repro.experiments import fig02_fairness_droptail as fig2

TINY = functools.partial(
    fig2.Config,
    capacities_bps=(200_000.0,),
    fair_shares_bps=(40_000.0,),
    duration=30.0,
)


@pytest.fixture
def tiny_fig02(monkeypatch, tmp_path):
    monkeypatch.setattr(fig2, "Config", TINY)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_jobs_flag_runs_and_prints_table(tiny_fig02, capsys):
    assert cli.main(["fig02", "--jobs", "2", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Fig 2" in out
    assert "200" in out  # the capacity row made it into the table


def test_jobs_one_matches_jobs_two(tiny_fig02, capsys, tmp_path):
    assert cli.main(["fig02", "--jobs", "1", "--no-cache", "--csv",
                     str(tmp_path / "j1.csv")]) == 0
    assert cli.main(["fig02", "--jobs", "2", "--no-cache", "--csv",
                     str(tmp_path / "j2.csv")]) == 0
    assert (tmp_path / "j1.csv").read_text() == (tmp_path / "j2.csv").read_text()


def test_cache_dir_respects_env(tiny_fig02, capsys, tmp_path):
    assert cli.main(["fig02", "--jobs", "1"]) == 0
    cache_dir = tmp_path / "cache"
    entries = list(cache_dir.rglob("*.pkl"))
    assert entries, "cache population under $REPRO_CACHE_DIR"
    # Second run reuses the entries rather than adding new ones.
    assert cli.main(["fig02", "--jobs", "1"]) == 0
    assert sorted(cache_dir.rglob("*.pkl")) == sorted(entries)


def test_single_scenario_note_for_jobs(monkeypatch, capsys):
    # fig01 has no grid; --jobs should be ignored with a stderr note,
    # without running the (slow) experiment itself.
    import repro.experiments.fig01_download_times as fig1

    class Namespace:
        experiment = "fig01"
        jobs = 4
        no_cache = False

    assert cli.engine_kwargs(fig1, Namespace()) == {}
    assert "--jobs ignored" in capsys.readouterr().err


def test_cache_backend_flag_selects_sqlite(tiny_fig02, capsys, tmp_path):
    db = tmp_path / "entries.sqlite"
    backend = f"sqlite:{db}"
    assert cli.main(["fig02", "--jobs", "1", "--cache-backend", backend]) == 0
    assert db.exists()
    # The entries landed in sqlite, not the dir cache.
    assert not list((tmp_path / "cache").rglob("*.pkl"))
    # And the sqlite-backed rerun prints the same table.
    first = capsys.readouterr().out
    assert cli.main(["fig02", "--jobs", "1", "--cache-backend", backend]) == 0
    assert capsys.readouterr().out == first


def test_cache_backend_env_var_applies(tiny_fig02, monkeypatch, tmp_path):
    db = tmp_path / "env.sqlite"
    monkeypatch.setenv("REPRO_CACHE_BACKEND", f"sqlite:{db}")
    assert cli.main(["fig02", "--jobs", "1"]) == 0
    assert db.exists()


def test_cache_stats_json(tiny_fig02, capsys, tmp_path):
    import json

    assert cli.main(["fig02", "--jobs", "1"]) == 0
    capsys.readouterr()
    assert cli.main(["cache", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["kind"] == "dir"
    assert stats["entries"] > 0
    assert stats["enabled"] is True


def test_cache_prune_empties_the_store(tiny_fig02, capsys):
    assert cli.main(["fig02", "--jobs", "1"]) == 0
    capsys.readouterr()
    assert cli.main(["cache", "prune"]) == 0
    assert "pruned" in capsys.readouterr().out
    assert cli.main(["cache", "stats", "--json"]) == 0
    import json

    assert json.loads(capsys.readouterr().out)["entries"] == 0


def test_resume_flag_arms_the_job_store(tiny_fig02, monkeypatch, capsys,
                                        tmp_path):
    from repro.parallel import JobStore

    monkeypatch.delenv("TAQ_JOB_STORE", raising=False)
    store_dir = tmp_path / "sweep-jobs"
    assert cli.main(["fig02", "--jobs", "1",
                     "--resume", str(store_dir)]) == 0
    assert (store_dir / "jobs.jsonl").is_file()
    store = JobStore(str(store_dir))
    assert len(store) > 0
    assert store.counts()["done"] == len(store)
    # Rerunning with --resume is idempotent: same jobs, all done.
    assert cli.main(["fig02", "--jobs", "1",
                     "--resume", str(store_dir)]) == 0
    assert JobStore(str(store_dir)).counts() == store.counts()
