"""The tentpole guarantee: parallel experiment runs are bit-identical
to the sequential path, for every converted experiment module.

Each experiment seeds a fresh simulator per point via
:class:`repro.sim.rng.RngRegistry`, so execution order and process
boundaries cannot leak into the results — these tests pin that down
with tiny (seconds-scale) grids.
"""

import pytest

from repro.experiments import fig03_buffer_tradeoff as fig3
from repro.experiments import fig08_fairness_taq as fig8
from repro.experiments import fig11_testbed as fig11
from repro.experiments import variants
from repro.experiments.sweeps import run_sweep
from repro.parallel import ResultCache

TINY_SWEEP = dict(
    capacities_bps=(200_000.0,),
    fair_shares_bps=(20_000.0, 40_000.0),
    duration=30.0,
)


def test_run_sweep_parallel_matches_sequential():
    sequential = run_sweep("droptail", jobs=1, **TINY_SWEEP)
    parallel = run_sweep("droptail", jobs=2, **TINY_SWEEP)
    # Dataclass equality compares every float exactly: bit-identical.
    assert parallel == sequential


def test_run_sweep_cached_rerun_matches(tmp_path):
    cache = ResultCache(root=str(tmp_path), version="pinned")
    first = run_sweep("droptail", jobs=2, cache=cache, **TINY_SWEEP)
    assert cache.misses == 2
    again = run_sweep("droptail", jobs=1, cache=cache, **TINY_SWEEP)
    assert cache.hits == 2
    assert again == first


def test_fig08_parallel_matches_sequential():
    config = fig8.Config(**TINY_SWEEP)
    sequential = fig8.run(config, jobs=1)
    parallel = fig8.run(config, jobs=2)
    assert parallel.points == sequential.points
    assert parallel.baseline == sequential.baseline
    # The baseline really is the droptail sweep, in sweep order.
    assert [p.fair_share_bps for p in parallel.baseline] == [
        p.fair_share_bps for p in parallel.points
    ]


def test_variants_parallel_matches_sequential():
    config = variants.Config(
        capacity_bps=200_000.0,
        n_flows=20,
        duration=30.0,
        transports=("newreno", "tahoe"),
        queues=("droptail",),
    )
    sequential = variants.run(config, jobs=1)
    parallel = variants.run(config, jobs=2)
    assert parallel.points == sequential.points
    assert parallel.taq_reference == sequential.taq_reference
    assert [(p.transport, p.queue_kind) for p in parallel.points] == [
        ("newreno", "droptail"),
        ("tahoe", "droptail"),
    ]


def test_fig03_parallel_matches_sequential():
    config = fig3.Config(
        capacity_bps=200_000.0,
        fair_shares_pkts_per_rtt=(1.0,),
        buffer_rtts=(1.0, 2.0),
        duration=30.0,
    )
    sequential = fig3.run(config, jobs=1)
    parallel = fig3.run(config, jobs=2)
    assert parallel.jfi == sequential.jfi
    assert parallel.measured_delay == sequential.measured_delay
    assert parallel.max_delay == sequential.max_delay


def test_fig11_parallel_matches_sequential():
    config = fig11.Config(
        capacities_bps=(200_000.0,),
        fair_shares_bps=(40_000.0,),
        duration=30.0,
    )
    sequential = fig11.run(config, jobs=1)
    parallel = fig11.run(config, jobs=2)
    assert parallel.points == sequential.points


@pytest.mark.parametrize("experiment", ["fig02", "fig03", "fig08", "fig11", "variants"])
def test_cli_grid_experiments_accept_engine_kwargs(experiment):
    """Every grid experiment exposes the jobs/cache/progress surface."""
    import importlib
    import inspect

    from repro.experiments.cli import EXPERIMENTS

    module = importlib.import_module(EXPERIMENTS[experiment][0])
    parameters = inspect.signature(module.run).parameters
    assert {"jobs", "cache", "progress"} <= set(parameters)
