"""The durable job store: states, replay, compaction, schema safety."""

from __future__ import annotations

import json

import pytest

from repro.parallel import JobStore, PointSpec, spec_key
from repro.parallel.jobs import JOBS_FILE, JOBS_SCHEMA_VERSION


def specs(n):
    return [PointSpec("tests.parallel.helpers:square", {"x": i},
                      label=f"x={i}") for i in range(n)]


class TestInMemory:
    def test_memory_store_is_not_persistent(self):
        store = JobStore(None, version="v1")
        assert not store.persistent
        assert store.log_path is None
        jobs = store.submit(specs(3))
        assert len(store) == 3
        store.mark_done(jobs[0].job_id, wall_time=1.0)
        assert store.counts()["done"] == 1

    def test_memory_store_skips_manifest_building(self):
        store = JobStore(None, version="v1")
        (job,) = store.submit(specs(1))
        assert job.manifest == {}


class TestSubmit:
    def test_job_ids_are_cache_keys(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        (job,) = store.submit(specs(1))
        assert job.job_id == spec_key(job.spec, "v1")

    def test_submit_is_idempotent(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        first = store.submit(specs(3))
        again = store.submit(specs(3))
        assert len(store) == 3
        assert [j.job_id for j in first] == [j.job_id for j in again]

    def test_duplicate_specs_map_to_one_job(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        spec = specs(1)[0]
        one, two = store.submit([spec, spec])
        assert one is two
        assert len(store) == 1

    def test_persistent_jobs_carry_manifest_provenance(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        (job,) = store.submit(specs(1))
        assert job.manifest["run_id"] == job.job_id
        assert job.manifest["schema_version"] >= 3


class TestStateMachine:
    def test_lifecycle_counts(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(3))
        store.mark_running(jobs[0].job_id, pid=42)
        store.mark_done(jobs[0].job_id, wall_time=1.5, cached=False)
        store.mark_running(jobs[1].job_id, pid=43)
        store.mark_failed(jobs[1].job_id, "RuntimeError('boom')")
        assert store.counts() == {"pending": 1, "running": 0,
                                  "done": 1, "failed": 1}
        assert store.pending() == [jobs[2]]
        assert jobs[0].wall_time == 1.5
        assert jobs[0].attempts == 1
        assert jobs[1].error == "RuntimeError('boom')"

    def test_reset_failed_requeues(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(2))
        store.mark_failed(jobs[0].job_id, "boom")
        assert store.reset_failed() == 1
        assert store.counts()["pending"] == 2
        assert jobs[0].error == ""

    def test_summary_payload(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        store.submit(specs(2))
        summary = store.summary()
        assert summary["schema"] == JOBS_SCHEMA_VERSION
        assert summary["total"] == 2
        assert summary["counts"]["pending"] == 2
        assert summary["interrupted"] == 0


class TestReplay:
    def test_states_survive_reopen(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(3))
        store.mark_done(jobs[0].job_id, wall_time=2.5, cached=True)
        store.mark_failed(jobs[1].job_id, "boom")
        reopened = JobStore(str(tmp_path), version="v1")
        assert reopened.counts() == {"pending": 1, "running": 0,
                                     "done": 1, "failed": 1}
        done = reopened.get(jobs[0].job_id)
        assert done.wall_time == 2.5
        assert done.cached is True
        assert reopened.get(jobs[1].job_id).error == "boom"
        # Submit order is preserved across replay.
        assert [j.job_id for j in reopened] == [j.job_id for j in jobs]

    def test_running_jobs_revert_to_pending_as_interrupted(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(3))
        store.mark_running(jobs[0].job_id, pid=1)
        store.mark_running(jobs[1].job_id, pid=2)
        store.mark_done(jobs[1].job_id, wall_time=1.0)
        reopened = JobStore(str(tmp_path), version="v1")
        assert reopened.interrupted == 1
        assert reopened.counts()["pending"] == 2
        assert reopened.counts()["done"] == 1
        # The interrupted job keeps its attempt count for forensics.
        assert reopened.get(jobs[0].job_id).attempts == 1

    def test_torn_tail_line_is_ignored(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(2))
        store.mark_done(jobs[0].job_id, wall_time=1.0)
        with open(tmp_path / JOBS_FILE, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "state", "id": "aaa", "sta')  # SIGKILL
        reopened = JobStore(str(tmp_path), version="v1")
        assert reopened.counts()["done"] == 1
        assert len(reopened) == 2

    def test_newer_schema_is_refused(self, tmp_path):
        header = {"kind": "jobstore", "schema": JOBS_SCHEMA_VERSION + 1}
        (tmp_path / JOBS_FILE).write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="newer than supported"):
            JobStore(str(tmp_path), version="v1")


class TestCompaction:
    def churn(self, store, jobs, rounds=10):
        for _ in range(rounds):
            for job in jobs:
                store.mark_running(job.job_id, pid=1)
                store.mark_failed(job.job_id, "flaky")
            store.reset_failed()

    def test_compact_snapshots_to_one_record_per_job(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(3))
        self.churn(store, jobs)
        store.mark_done(jobs[0].job_id, wall_time=1.0)
        before = len((tmp_path / JOBS_FILE).read_text().splitlines())
        store.compact()
        lines = (tmp_path / JOBS_FILE).read_text().splitlines()
        assert len(lines) == len(jobs) + 1  # header + one per job
        assert len(lines) < before
        reopened = JobStore(str(tmp_path), version="v1")
        assert reopened.counts() == store.counts()
        assert [j.job_id for j in reopened] == [j.job_id for j in jobs]

    def test_maybe_compact_fires_on_churn(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        jobs = store.submit(specs(2))
        store.maybe_compact()  # fresh store: no reason to compact
        assert len((tmp_path / JOBS_FILE).read_text().splitlines()) >= 3
        self.churn(store, jobs, rounds=20)
        store.maybe_compact()
        lines = (tmp_path / JOBS_FILE).read_text().splitlines()
        assert len(lines) == len(jobs) + 1

    def test_compacted_log_keeps_manifests(self, tmp_path):
        store = JobStore(str(tmp_path), version="v1")
        (job,) = store.submit(specs(1))
        store.compact()
        reopened = JobStore(str(tmp_path), version="v1")
        assert reopened.get(job.job_id).manifest["run_id"] == job.job_id
