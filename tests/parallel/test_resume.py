"""Kill-and-resume: a SIGKILLed sweep restarts with only cold points rerun.

The integration contract of the service plane: a ``jobs=2`` sweep over
a durable job store and dir cache is SIGKILLed mid-flight, then
resumed.  The resumed run must (a) serve every point the killed run
finished straight from the cache — PerfProbe's hit counter equals the
surviving entry count, (b) recompute exactly the cold remainder, and
(c) produce bit-identical results to an undisturbed run.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.parallel import JobStore, ParallelRunner, PointSpec, ResultCache
from repro.perf.probe import PerfProbe

REPO_ROOT = Path(__file__).resolve().parents[2]

N_POINTS = 24
DELAY_S = 0.15

CHILD = """
import sys
from repro.parallel import JobStore, ParallelRunner, PointSpec, ResultCache

cache_root, store_root, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
specs = [
    PointSpec("tests.parallel.helpers:slow_square",
              {"x": i, "delay": %r}, label=f"x={i}")
    for i in range(n)
]
runner = ParallelRunner(
    jobs=2,
    cache=ResultCache(root=cache_root, version="v1"),
    store=JobStore(store_root, version="v1"),
)
runner.run(specs)
""" % DELAY_S


def sweep_specs():
    return [
        PointSpec("tests.parallel.helpers:slow_square",
                  {"x": i, "delay": DELAY_S}, label=f"x={i}")
        for i in range(N_POINTS)
    ]


def count_entries(cache_root):
    return len(list(Path(cache_root).glob("??/*.pkl")))


def test_sigkill_then_resume_reruns_only_cold_points(tmp_path):
    cache_root = str(tmp_path / "cache")
    store_root = str(tmp_path / "jobs")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD, cache_root, store_root, str(N_POINTS)],
        env=env,
        cwd=str(REPO_ROOT),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Let it land a few points, then SIGKILL mid-sweep.
        deadline = time.time() + 60.0
        while count_entries(cache_root) < 3:
            assert proc.poll() is None, "sweep finished before the kill"
            assert time.time() < deadline, "sweep never produced entries"
            time.sleep(0.01)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30.0)
    # Orphaned pool workers finish their in-flight point and exit;
    # give them a moment so the entry count stops moving.
    settled = count_entries(cache_root)
    deadline = time.time() + 10.0
    while time.time() < deadline:
        time.sleep(3 * DELAY_S)
        now = count_entries(cache_root)
        if now == settled:
            break
        settled = now

    warm = count_entries(cache_root)
    assert 0 < warm < N_POINTS, "kill landed too early or too late"

    # The reopened store reverts the killed run's in-flight jobs.
    store = JobStore(store_root, version="v1")
    assert store.interrupted > 0
    assert store.counts()["running"] == 0
    assert store.counts()["done"] < N_POINTS

    # Resume: same sweep, same store, with a probe watching the cache.
    probe = PerfProbe()
    runner = ParallelRunner(
        jobs=2,
        cache=ResultCache(root=cache_root, version="v1"),
        store=store,
        perf=probe,
    )
    results = runner.run(sweep_specs())

    # Only cold points re-executed.
    assert probe.cache_hits == warm
    assert probe.cache_misses == N_POINTS - warm
    assert store.counts()["done"] == N_POINTS

    # Bit-identical to an undisturbed sequential run.
    fresh = ParallelRunner(jobs=1).run(sweep_specs())
    assert pickle.dumps([r.value for r in results]) == \
        pickle.dumps([r.value for r in fresh])
