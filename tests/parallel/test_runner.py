"""Runner semantics: ordering, both execution paths, cache and progress."""

import io

import pytest

from repro.parallel import ParallelRunner, PointSpec, ResultCache
from repro.parallel.runner import ProgressPrinter

SQUARE = "tests.parallel.helpers:square"


def square_specs(values):
    return [PointSpec(SQUARE, {"x": x}) for x in values]


class TestResolve:
    def test_resolves_dotted_path(self):
        assert PointSpec(SQUARE, {"x": 4}).resolve()(x=4) == 16

    def test_missing_colon_rejected(self):
        with pytest.raises(ValueError):
            PointSpec("tests.parallel.helpers", {}).resolve()

    def test_unknown_module(self):
        with pytest.raises(ImportError):
            PointSpec("tests.parallel.no_such_module:f", {}).resolve()

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            PointSpec("tests.parallel.helpers:no_such_fn", {}).resolve()

    def test_describe_prefers_label(self):
        assert PointSpec(SQUARE, {"x": 1}, label="point A").describe() == "point A"
        assert "square" in PointSpec(SQUARE, {"x": 1}).describe()


@pytest.mark.parametrize("jobs", [1, 2])
class TestExecution:
    def test_values_in_spec_order(self, jobs):
        results = ParallelRunner(jobs=jobs).run(square_specs([5, 3, 9, 1]))
        assert [r.value for r in results] == [25, 9, 81, 1]

    def test_wall_time_recorded_and_not_cached(self, jobs):
        results = ParallelRunner(jobs=jobs).run(square_specs([2, 4]))
        assert all(r.wall_time >= 0.0 for r in results)
        assert all(not r.cached for r in results)

    def test_point_error_propagates(self, jobs):
        specs = square_specs([1]) + [
            PointSpec("tests.parallel.helpers:boom", {"message": "expected"})
        ]
        with pytest.raises(RuntimeError, match="expected"):
            ParallelRunner(jobs=jobs).run(specs)

    def test_empty_spec_list(self, jobs):
        assert ParallelRunner(jobs=jobs).run([]) == []


class TestJobsDefaulting:
    def test_none_means_cpu_count(self):
        import os

        assert ParallelRunner(jobs=None).jobs == max(1, os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert ParallelRunner(jobs=0).jobs == 1
        assert ParallelRunner(jobs=-3).jobs == 1


@pytest.mark.parametrize("jobs", [1, 2])
class TestCacheIntegration:
    def test_second_run_is_all_hits(self, tmp_path, jobs):
        cache = ResultCache(root=str(tmp_path), version="v1")
        runner = ParallelRunner(jobs=jobs, cache=cache)
        first = runner.run(square_specs([3, 6]))
        assert [r.cached for r in first] == [False, False]
        second = runner.run(square_specs([3, 6]))
        assert [r.cached for r in second] == [True, True]
        assert [r.value for r in second] == [r.value for r in first]
        # Cached results keep the wall time of the original computation.
        assert [r.wall_time for r in second] == [r.wall_time for r in first]
        assert cache.hits == 2

    def test_partial_hits_recompute_only_misses(self, tmp_path, jobs):
        cache = ResultCache(root=str(tmp_path), version="v1")
        ParallelRunner(jobs=1, cache=cache).run(square_specs([3]))
        results = ParallelRunner(jobs=jobs, cache=cache).run(square_specs([3, 7]))
        assert [(r.value, r.cached) for r in results] == [(9, True), (49, False)]

    def test_disabled_cache_still_runs(self, tmp_path, jobs):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        cache = ResultCache(root=str(blocker / "nope"), version="v1")
        assert not cache.enabled
        results = ParallelRunner(jobs=jobs, cache=cache).run(square_specs([4]))
        assert results[0].value == 16


@pytest.mark.parametrize("jobs", [1, 2])
class TestLookupTime:
    def test_hits_record_lookup_time_computed_points_do_not(self, tmp_path, jobs):
        cache = ResultCache(root=str(tmp_path), version="v1")
        runner = ParallelRunner(jobs=jobs, cache=cache)
        cold = runner.run(square_specs([3, 6]))
        assert [r.lookup_time for r in cold] == [0.0, 0.0]
        warm = runner.run(square_specs([3, 6]))
        assert all(r.cached for r in warm)
        assert all(r.lookup_time > 0.0 for r in warm)
        # Lookup cost is the hit's own, never the historical compute time.
        assert all(r.lookup_time != r.wall_time for r in warm)


class TestPerfProbe:
    def test_counts_hits_and_misses_and_spans_points(self, tmp_path):
        from repro.perf import PerfProbe

        cache = ResultCache(root=str(tmp_path), version="v1")
        probe = PerfProbe()
        runner = ParallelRunner(jobs=1, cache=cache, perf=probe)
        runner.run(square_specs([2, 5]))
        assert (probe.cache_hits, probe.cache_misses) == (0, 2)
        assert probe.spans["parallel.point"].calls == 2
        runner.run(square_specs([2, 5]))
        assert (probe.cache_hits, probe.cache_misses) == (2, 2)
        assert probe.spans["parallel.point"].calls == 2  # hits skip execution

    def test_no_cache_means_no_miss_counting(self):
        from repro.perf import PerfProbe

        probe = PerfProbe()
        ParallelRunner(jobs=1, perf=probe).run(square_specs([2]))
        assert (probe.cache_hits, probe.cache_misses) == (0, 0)
        assert probe.spans["parallel.point"].calls == 1


class TestProgressPrinterSummary:
    """The end-of-batch roll-up must keep cold-run compute time and
    cache-hit lookup time in separate columns (a mostly-cached sweep
    must never read as if computation got faster)."""

    def _printer(self):
        return ProgressPrinter(label="sweep", stream=io.StringIO())

    def _result(self, cached, wall_time, lookup_time=0.0):
        return type(
            "R",
            (),
            {
                "spec": PointSpec(SQUARE, {"x": 1}, label="p"),
                "cached": cached,
                "wall_time": wall_time,
                "lookup_time": lookup_time,
            },
        )()

    def test_summary_separates_compute_and_lookup(self):
        printer = self._printer()
        printer(1, 3, self._result(cached=False, wall_time=4.0))
        printer(2, 3, self._result(cached=True, wall_time=6.0, lookup_time=0.25))
        printer(3, 3, self._result(cached=True, wall_time=2.0, lookup_time=0.15))
        line = printer.summary_line(3)
        assert "1 computed (compute 4.0s)" in line
        assert "2 cache hit(s) (lookup 0.40s, saved 8.0s)" in line
        # Saved historical time never leaks into the compute column.
        assert printer.compute_time == 4.0
        assert printer.lookup_time == pytest.approx(0.40)
        assert printer.saved_time == 8.0

    def test_all_cold_batch(self):
        printer = self._printer()
        printer(1, 1, self._result(cached=False, wall_time=1.5))
        line = printer.summary_line(1)
        assert "1 computed (compute 1.5s)" in line
        assert "0 cache hit(s) (lookup 0.00s, saved 0.0s)" in line

    def test_stream_gets_summary_on_last_point(self):
        stream = io.StringIO()
        printer = ProgressPrinter(label="sweep", stream=stream)
        printer(1, 2, self._result(cached=False, wall_time=1.0))
        assert "[sweep]" not in stream.getvalue()
        printer(2, 2, self._result(cached=True, wall_time=3.0, lookup_time=0.1))
        assert "[sweep] 2 point(s):" in stream.getvalue()


class TestProgress:
    def test_callback_sees_every_point_in_order(self):
        calls = []
        runner = ParallelRunner(
            jobs=1, progress=lambda done, total, result: calls.append((done, total))
        )
        runner.run(square_specs([1, 2, 3]))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_callback_counts_cache_hits(self, tmp_path):
        cache = ResultCache(root=str(tmp_path), version="v1")
        ParallelRunner(jobs=1, cache=cache).run(square_specs([1, 2]))
        calls = []
        runner = ParallelRunner(
            jobs=1,
            cache=cache,
            progress=lambda done, total, result: calls.append(result.cached),
        )
        runner.run(square_specs([1, 2]))
        assert calls == [True, True]
