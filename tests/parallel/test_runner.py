"""Runner semantics: ordering, both execution paths, cache and progress."""

import pytest

from repro.parallel import ParallelRunner, PointSpec, ResultCache

SQUARE = "tests.parallel.helpers:square"


def square_specs(values):
    return [PointSpec(SQUARE, {"x": x}) for x in values]


class TestResolve:
    def test_resolves_dotted_path(self):
        assert PointSpec(SQUARE, {"x": 4}).resolve()(x=4) == 16

    def test_missing_colon_rejected(self):
        with pytest.raises(ValueError):
            PointSpec("tests.parallel.helpers", {}).resolve()

    def test_unknown_module(self):
        with pytest.raises(ImportError):
            PointSpec("tests.parallel.no_such_module:f", {}).resolve()

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            PointSpec("tests.parallel.helpers:no_such_fn", {}).resolve()

    def test_describe_prefers_label(self):
        assert PointSpec(SQUARE, {"x": 1}, label="point A").describe() == "point A"
        assert "square" in PointSpec(SQUARE, {"x": 1}).describe()


@pytest.mark.parametrize("jobs", [1, 2])
class TestExecution:
    def test_values_in_spec_order(self, jobs):
        results = ParallelRunner(jobs=jobs).run(square_specs([5, 3, 9, 1]))
        assert [r.value for r in results] == [25, 9, 81, 1]

    def test_wall_time_recorded_and_not_cached(self, jobs):
        results = ParallelRunner(jobs=jobs).run(square_specs([2, 4]))
        assert all(r.wall_time >= 0.0 for r in results)
        assert all(not r.cached for r in results)

    def test_point_error_propagates(self, jobs):
        specs = square_specs([1]) + [
            PointSpec("tests.parallel.helpers:boom", {"message": "expected"})
        ]
        with pytest.raises(RuntimeError, match="expected"):
            ParallelRunner(jobs=jobs).run(specs)

    def test_empty_spec_list(self, jobs):
        assert ParallelRunner(jobs=jobs).run([]) == []


class TestJobsDefaulting:
    def test_none_means_cpu_count(self):
        import os

        assert ParallelRunner(jobs=None).jobs == max(1, os.cpu_count() or 1)

    def test_floor_of_one(self):
        assert ParallelRunner(jobs=0).jobs == 1
        assert ParallelRunner(jobs=-3).jobs == 1


@pytest.mark.parametrize("jobs", [1, 2])
class TestCacheIntegration:
    def test_second_run_is_all_hits(self, tmp_path, jobs):
        cache = ResultCache(root=str(tmp_path), version="v1")
        runner = ParallelRunner(jobs=jobs, cache=cache)
        first = runner.run(square_specs([3, 6]))
        assert [r.cached for r in first] == [False, False]
        second = runner.run(square_specs([3, 6]))
        assert [r.cached for r in second] == [True, True]
        assert [r.value for r in second] == [r.value for r in first]
        # Cached results keep the wall time of the original computation.
        assert [r.wall_time for r in second] == [r.wall_time for r in first]
        assert cache.hits == 2

    def test_partial_hits_recompute_only_misses(self, tmp_path, jobs):
        cache = ResultCache(root=str(tmp_path), version="v1")
        ParallelRunner(jobs=1, cache=cache).run(square_specs([3]))
        results = ParallelRunner(jobs=jobs, cache=cache).run(square_specs([3, 7]))
        assert [(r.value, r.cached) for r in results] == [(9, True), (49, False)]

    def test_disabled_cache_still_runs(self, tmp_path, jobs):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        cache = ResultCache(root=str(blocker / "nope"), version="v1")
        assert not cache.enabled
        results = ParallelRunner(jobs=jobs, cache=cache).run(square_specs([4]))
        assert results[0].value == 16


class TestProgress:
    def test_callback_sees_every_point_in_order(self):
        calls = []
        runner = ParallelRunner(
            jobs=1, progress=lambda done, total, result: calls.append((done, total))
        )
        runner.run(square_specs([1, 2, 3]))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_callback_counts_cache_hits(self, tmp_path):
        cache = ResultCache(root=str(tmp_path), version="v1")
        ParallelRunner(jobs=1, cache=cache).run(square_specs([1, 2]))
        calls = []
        runner = ParallelRunner(
            jobs=1,
            cache=cache,
            progress=lambda done, total, result: calls.append(result.cached),
        )
        runner.run(square_specs([1, 2]))
        assert calls == [True, True]
