"""``taq-serve``: submit/status/results/cancel over HTTP.

Drives a real :class:`ServiceServer` on an ephemeral port with
stdlib urllib clients — the same way a remote submitter would — and
checks the full loop: submit points, watch the executor drain them,
fetch values through the shared /cache endpoints, and observe the
sweep on the progress bus.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.parallel import JobStore
from repro.parallel.bus import read_bus
from repro.parallel.cache import decode_entry
from repro.parallel.service import ServiceServer

SQUARE = "tests.parallel.helpers:square"


def http_open(url, **kwargs):
    # Connection: close keeps test sockets from lingering until GC.
    headers = dict(kwargs.pop("headers", {}), Connection="close")
    request = urllib.request.Request(url, headers=headers, **kwargs)
    return urllib.request.urlopen(request, timeout=10.0)


def get_bytes(url):
    with http_open(url) as response:
        return response.read()


def get_json(url):
    return json.loads(get_bytes(url).decode("utf-8"))


def post_json(url, payload):
    with http_open(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    ) as response:
        return json.loads(response.read().decode("utf-8"))


def wait_done(url, total, timeout_s=30.0):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        status = get_json(f"{url}/status")
        if status["counts"]["done"] == total:
            return status
        time.sleep(0.05)
    raise AssertionError(f"service did not finish {total} jobs in time")


@pytest.fixture
def server(tmp_path):
    srv = ServiceServer(str(tmp_path / "svc"), jobs=1, version="v1")
    srv.serve_in_background()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()


class TestSubmitAndExecute:
    def test_full_loop(self, server):
        points = [{"fn": SQUARE, "kwargs": {"x": x}, "label": f"x={x}"}
                  for x in (2, 3, 4)]
        response = post_json(f"{server.url}/submit", {"points": points})
        assert response["submitted"] == 3
        assert response["known"] == 0
        assert len(response["ids"]) == 3

        status = wait_done(server.url, 3)
        assert status["total"] == 3
        assert {job["state"] for job in status["jobs"]} == {"done"}

        results = get_json(f"{server.url}/results")
        assert len(results["done"]) == 3
        # Values travel through the shared entry store, by job id.
        by_label = {}
        for row in results["done"]:
            value, _wall = decode_entry(
                get_bytes(f"{server.url}/cache/{row['id']}")
            )
            by_label[row["label"]] = value
        assert by_label == {"x=2": 4, "x=3": 9, "x=4": 16}

    def test_resubmit_is_idempotent(self, server):
        points = [{"fn": SQUARE, "kwargs": {"x": 5}}]
        first = post_json(f"{server.url}/submit", {"points": points})
        assert first["submitted"] == 1
        wait_done(server.url, 1)
        again = post_json(f"{server.url}/submit", {"points": points})
        assert again["submitted"] == 0
        assert again["known"] == 1
        assert again["ids"] == first["ids"]

    def test_sweep_is_visible_on_the_bus(self, server):
        points = [{"fn": SQUARE, "kwargs": {"x": x}} for x in (6, 7)]
        post_json(f"{server.url}/submit", {"points": points})
        status = wait_done(server.url, 2)
        state = read_bus(status["bus_dir"])
        assert len(state["points"]) == 2
        assert all(p["status"] in ("done", "cached")
                   for p in state["points"].values())

    def test_failed_points_are_recorded_not_fatal(self, server):
        points = [
            {"fn": "tests.parallel.helpers:boom", "kwargs": {}},
            {"fn": SQUARE, "kwargs": {"x": 8}},
        ]
        post_json(f"{server.url}/submit", {"points": points})
        deadline = time.time() + 30.0
        while time.time() < deadline:
            status = get_json(f"{server.url}/status")
            counts = status["counts"]
            if counts["done"] == 1 and counts["failed"] == 1:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("keep-going executor did not settle")
        failed = [j for j in status["jobs"] if j["state"] == "failed"]
        assert "boom" in failed[0]["error"]


class TestCancel:
    def test_cancel_marks_pending_jobs_failed(self, tmp_path):
        # Seed pending jobs before the server exists; the executor only
        # wakes on submit, so they stay pending until cancelled.
        root = tmp_path / "svc"
        from repro.parallel import PointSpec

        seed = JobStore(str(root / "jobs"), version="v1")
        seed.submit([PointSpec(SQUARE, {"x": x}) for x in (11, 12)])
        srv = ServiceServer(str(root), jobs=1, version="v1")
        srv.serve_in_background()
        try:
            response = post_json(f"{srv.url}/cancel", {})
            assert response["cancelled"] == 2
            status = get_json(f"{srv.url}/status")
            assert status["counts"]["failed"] == 2
            assert all(j["error"] == "cancelled" for j in status["jobs"])
        finally:
            srv.shutdown()
            srv.server_close()


class TestValidation:
    def test_submit_without_points_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(f"{server.url}/submit", {})
        assert err.value.code == 400
        err.value.close()

    def test_point_without_fn_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post_json(f"{server.url}/submit", {"points": [{"kwargs": {}}]})
        assert err.value.code == 400
        err.value.close()

    def test_store_endpoints_still_work(self, server):
        assert get_json(f"{server.url}/stats")["kind"] == "dir"
        # The plain-text liveness contract survives behind ?plain=1.
        assert get_bytes(f"{server.url}/healthz?plain=1") == b"ok"


class TestRunHealthPlane:
    def test_healthz_reports_job_depth_and_executor(self, server):
        health = get_json(f"{server.url}/healthz")
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"pending", "running", "done", "failed"}
        assert health["executor"]["alive"] is True

        points = [{"fn": SQUARE, "kwargs": {"x": x}} for x in (31, 32)]
        post_json(f"{server.url}/submit", {"points": points})
        wait_done(server.url, 2)
        health = get_json(f"{server.url}/healthz")
        assert health["jobs"]["done"] == 2
        assert health["jobs"]["pending"] == 0

    def test_metrics_endpoint_serves_valid_openmetrics(self, server):
        from repro.obs.export import (
            OPENMETRICS_CONTENT_TYPE,
            parse_openmetrics,
            validate_openmetrics,
        )

        points = [{"fn": SQUARE, "kwargs": {"x": x}} for x in (41, 42, 43)]
        post_json(f"{server.url}/submit", {"points": points})
        wait_done(server.url, 3)

        with http_open(f"{server.url}/metrics") as response:
            assert response.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        assert validate_openmetrics(text) == []
        families = parse_openmetrics(text)

        jobs = {s["labels"]["state"]: s["value"]
                for s in families["taq_jobs"]["samples"]}
        assert jobs["done"] == 3.0
        assert families["taq_executor_alive"]["samples"][0]["value"] == 1.0

        cache = {s["labels"]["kind"]: s["value"]
                 for s in families["taq_cache_entries"]["samples"]}
        assert cache == {"dir": 3.0}
        assert "taq_cache_hits" in families
        assert "taq_cache_misses" in families

        # The executor ran points through the bus: their status shows up.
        assert "taq_bus_points" in families
        statuses = {s["labels"]["status"]
                    for s in families["taq_bus_points"]["samples"]}
        assert statuses <= {"pending", "running", "done", "cached", "failed"}

    def test_plain_store_metrics_endpoint(self, tmp_path):
        from repro.obs.export import validate_openmetrics
        from repro.parallel.httpstore import StoreServer

        srv = StoreServer(str(tmp_path / "store"))
        srv.serve_in_background()
        try:
            text = get_bytes(f"{srv.url}/metrics").decode("utf-8")
        finally:
            srv.shutdown()
            srv.server_close()
        assert validate_openmetrics(text) == []
        assert "taq_cache_entries" in text
        # The bare store has no job queue: no service families leak in.
        assert "taq_jobs" not in text


class TestDurability:
    def test_restarted_service_remembers_done_jobs(self, tmp_path):
        root = str(tmp_path / "svc")
        points = [{"fn": SQUARE, "kwargs": {"x": x}} for x in (21, 22)]
        srv = ServiceServer(root, jobs=1, version="v1")
        srv.serve_in_background()
        try:
            post_json(f"{srv.url}/submit", {"points": points})
            wait_done(srv.url, 2)
        finally:
            srv.shutdown()
            srv.server_close()
        # A new service over the same root replays the job store.
        srv = ServiceServer(root, jobs=1, version="v1")
        srv.serve_in_background()
        try:
            status = get_json(f"{srv.url}/status")
            assert status["counts"]["done"] == 2
            results = get_json(f"{srv.url}/results")
            assert len(results["done"]) == 2
        finally:
            srv.shutdown()
            srv.server_close()
