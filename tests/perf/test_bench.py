"""The benchmark registry, runner and BENCH document round-trip.

The whole suite runs here at ``scale=0.02`` — fractions of a second —
so registration, determinism and the document schema are covered by the
default test run without benchmark-scale wall time.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    BenchCounts,
    Benchmark,
    bench_document,
    get_benchmark,
    load_bench,
    load_suite,
    run_benchmark,
    run_suite,
    write_bench,
)

SCALE = 0.02


def test_suite_has_at_least_ten_benchmarks():
    registry = load_suite()
    assert len(registry) >= 10
    groups = {bench.group for bench in registry.values()}
    # Coverage spans every instrumented layer.
    assert {"sim", "queues", "tcp", "scenario", "parallel"} <= groups


def test_every_queue_discipline_has_a_saturation_benchmark():
    registry = load_suite()
    for kind in ("droptail", "red", "sfq", "favorqueue", "taq"):
        assert f"queue_{kind}_saturation" in registry


def test_unknown_benchmark_lists_known_names():
    load_suite()
    with pytest.raises(KeyError, match="event_heap_churn"):
        get_benchmark("no_such_benchmark")


def test_counts_are_deterministic_per_scale():
    bench = get_benchmark("queue_taq_saturation")
    first = bench.fn(SCALE)
    second = bench.fn(SCALE)
    assert (first.events, first.packets) == (second.events, second.packets)
    assert first.packets > 0


def test_run_benchmark_measures_and_scales():
    bench = get_benchmark("event_heap_churn")
    result = run_benchmark(bench, scale=SCALE, repeats=2)
    assert result.name == "event_heap_churn"
    assert result.wall_time_s > 0
    assert result.events > 0
    assert result.events_per_sec == pytest.approx(result.events / result.wall_time_s)
    assert result.peak_rss_bytes > 0
    assert result.repeats == 2
    assert result.scale == SCALE


def test_scenario_benchmarks_count_events_and_packets():
    result = run_benchmark(get_benchmark("tcp_small_packets_taq"), scale=SCALE)
    assert result.events > 0
    assert result.packets > 0


def test_run_suite_all_and_selection(tmp_path):
    results = run_suite(scale=SCALE)
    assert [r.name for r in results] == sorted(load_suite())
    only = run_suite(names=["event_heap_cancel"], scale=SCALE)
    assert [r.name for r in only] == ["event_heap_cancel"]


def test_bench_document_round_trip(tmp_path):
    results = run_suite(names=["event_heap_cancel", "queue_droptail_saturation"],
                        scale=SCALE)
    document = bench_document(results)
    assert document["schema"] == BENCH_SCHEMA
    assert document["schema_version"] == BENCH_SCHEMA_VERSION
    assert document["source_hash"]
    path = str(tmp_path / "bench.json")
    write_bench(document, path)
    loaded = load_bench(path)
    assert set(loaded["benchmarks"]) == {
        "event_heap_cancel", "queue_droptail_saturation"
    }
    row = loaded["benchmarks"]["event_heap_cancel"]
    for key in ("wall_time_s", "events_per_sec", "packets_per_sec",
                "peak_rss_bytes"):
        assert key in row


def test_load_bench_rejects_wrong_schema_and_newer_version(tmp_path):
    other = tmp_path / "other.json"
    other.write_text(json.dumps({"schema": "something.else"}))
    with pytest.raises(ValueError, match="not a BENCH document"):
        load_bench(str(other))
    newer = tmp_path / "newer.json"
    newer.write_text(json.dumps({
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION + 1,
        "benchmarks": {},
    }))
    with pytest.raises(ValueError, match="newer than supported"):
        load_bench(str(newer))


def test_duplicate_registration_rejected():
    load_suite()
    from repro.perf.bench import benchmark

    with pytest.raises(ValueError, match="duplicate"):
        benchmark("event_heap_churn")(lambda scale: BenchCounts())


def test_committed_baseline_matches_current_suite():
    """BENCH_6.json at the repo root is the committed baseline the CI
    perf job compares against — it must stay in step with the suite."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "..", "BENCH_6.json")
    document = load_bench(path)
    assert set(document["benchmarks"]) == set(load_suite())
    for name, row in document["benchmarks"].items():
        assert row["wall_time_s"] > 0, name
        assert row["peak_rss_bytes"] > 0, name


def test_benchmark_dataclass_catches_registration_metadata():
    bench = get_benchmark("parallel_sweep")
    assert isinstance(bench, Benchmark)
    assert bench.group == "parallel"
    assert bench.description
