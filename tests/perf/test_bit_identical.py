"""Armed probes must not change what the simulation computes.

Probes only read the wall clock, so an armed run has to schedule and
fire exactly the same simulated event sequence as an unarmed one.  Two
layers of evidence:

- a scenario-level A/B: the same spec built twice, once unarmed and
  once under ``profiled()``, must produce identical goodput tables,
  event counts and final clocks;
- the goldens harness re-run *under profiling*: the same experiments CI
  pins byte-for-byte must still match their seed CSVs with a probe
  armed on everything ``build_simulation`` constructs.  fig09 and pool
  run in the default suite; the other fast goldens ride behind
  ``--run-slow``.
"""

from __future__ import annotations

import importlib
import os

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.perf import profiled
from tests.experiments.test_goldens import EXPERIMENTS, GOLDEN_DIR

SCENARIO = {
    "name": "bitid",
    "seed": 11,
    "duration": 30.0,
    "topology": {"capacity_bps": 600_000, "rtt": 0.2, "pkt_size": 200},
    "queue": {"kind": "taq"},
    "workloads": [
        {"type": "bulk", "n_flows": 6},
        {"type": "short", "lengths": [5, 9, 13], "start_time": 10.0},
    ],
}


def _run(spec_document, armed):
    spec = ScenarioSpec.from_document(spec_document)
    if armed:
        with profiled() as probe:
            built = build_simulation(spec)
            built.run()
    else:
        probe = None
        built = build_simulation(spec)
        built.run()
    return built, probe


def test_armed_scenario_is_bit_identical():
    plain, _ = _run(SCENARIO, armed=False)
    armed, probe = _run(SCENARIO, armed=True)
    assert probe is not None and probe.events_popped > 0  # probe saw the run
    assert armed.sim.processed == plain.sim.processed
    assert armed.sim.now == plain.sim.now
    assert armed.queue.enqueued == plain.queue.enqueued
    assert armed.queue.dropped == plain.queue.dropped
    assert armed.collector._slices == plain.collector._slices


#: Subset of the goldens' FAST set cheap enough to re-run armed in the
#: default suite; the rest are slow-marked (same convention as the
#: goldens module).
PROFILED_FAST = ("fig09", "pool")
PROFILED_SLOW = ("fig10", "overlay", "rttf")


def _profiled_golden_params():
    params = [pytest.param(name, id=name) for name in PROFILED_FAST]
    params += [
        pytest.param(name, id=name, marks=pytest.mark.slow) for name in PROFILED_SLOW
    ]
    return params


@pytest.mark.parametrize("name", _profiled_golden_params())
def test_golden_experiment_unchanged_under_profiling(name):
    module = importlib.import_module(EXPERIMENTS[name])
    with profiled() as probe:
        result = module.run(module.Config())
    produced = result.table().to_csv().replace("\r\n", "\n")
    with open(os.path.join(GOLDEN_DIR, f"{name}.csv"), encoding="utf-8") as handle:
        golden = handle.read().replace("\r\n", "\n")
    assert produced == golden, (
        f"{name} diverged from its golden when run under an armed probe — "
        f"instrumentation must never alter the simulated event sequence"
    )
    # And the probe really was armed on the experiment's simulations.
    assert probe.events_popped > 0
    assert probe.callbacks_dispatched > 0
