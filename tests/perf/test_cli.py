"""``taq-perf`` end to end: run, compare (exit codes), profile."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import load_bench
from repro.perf.cli import main

SCALE_ARGS = ["--scale", "0.02"]


def test_run_writes_bench_document(tmp_path, capsys):
    out = str(tmp_path / "bench.json")
    code = main(["run", "--out", out, "--only", "event_heap_cancel",
                 "--only", "queue_droptail_saturation", *SCALE_ARGS])
    assert code == 0
    document = load_bench(out)
    assert set(document["benchmarks"]) == {
        "event_heap_cancel", "queue_droptail_saturation"
    }
    assert f"wrote {out}: 2 benchmark(s)" in capsys.readouterr().out


def test_run_list(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    assert "event_heap_churn" in out
    assert "[queues]" in out


def test_run_unknown_benchmark_exits_2(capsys):
    assert main(["run", "--only", "nope", *SCALE_ARGS]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_compare_detects_injected_slowdown(tmp_path, capsys):
    out = str(tmp_path / "base.json")
    assert main(["run", "--out", out, "--only", "event_heap_cancel",
                 *SCALE_ARGS]) == 0
    baseline = json.loads(open(out).read())
    # Inject a 3x slowdown into a copy: compare must fail on it ...
    slow = json.loads(json.dumps(baseline))
    slow["benchmarks"]["event_heap_cancel"]["wall_time_s"] *= 3.0
    slow_path = tmp_path / "slow.json"
    slow_path.write_text(json.dumps(slow))
    assert main(["compare", out, str(slow_path)]) == 1
    assert "REGRESSED" in capsys.readouterr().out
    # ... a self-compare passes ...
    assert main(["compare", out, out]) == 0
    # ... and a loose per-benchmark override forgives the slowdown.
    assert main(["compare", out, str(slow_path),
                 "--threshold-for", "event_heap_cancel=400"]) == 0


def test_compare_rejects_non_bench_file(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"schema": "not.bench"}))
    assert main(["compare", str(bogus), str(bogus)]) == 2
    assert "error:" in capsys.readouterr().err


def test_profile_bench_writes_pstats_and_folded(tmp_path, capsys):
    prefix = str(tmp_path / "prof")
    code = main(["profile", "--bench", "tcp_small_packets_droptail",
                 "--scale", "0.2", "--out", prefix,
                 "--sample-interval", "0.0005"])
    assert code == 0
    assert (tmp_path / "prof.pstats").exists()
    assert (tmp_path / "prof.folded").exists()
    out = capsys.readouterr().out
    # cProfile table, probe roll-up, and the artifact summary line.
    assert "cumulative" in out
    assert "counters:" in out
    assert "sim.events_popped" in out
    assert "wrote" in out


def test_profile_scenario(tmp_path, capsys):
    scenario = tmp_path / "scenario.json"
    scenario.write_text(json.dumps({
        "name": "cli-profile",
        "seed": 5,
        "duration": 10.0,
        "topology": {"capacity_bps": 400_000, "rtt": 0.1, "pkt_size": 300},
        "workloads": [{"type": "bulk", "n_flows": 3}],
    }))
    prefix = str(tmp_path / "sprof")
    assert main(["profile", "--scenario", str(scenario), "--out", prefix]) == 0
    folded = (tmp_path / "sprof.folded").read_text()
    # Folded lines are "mod:fn;mod:fn ... count" — flamegraph.pl input.
    for line in folded.splitlines():
        stack, _, count = line.rpartition(" ")
        assert stack and count.isdigit()


def test_profile_unknown_bench_exits_2(tmp_path, capsys):
    assert main(["profile", "--bench", "nope",
                 "--out", str(tmp_path / "x")]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_profile_requires_a_target():
    with pytest.raises(SystemExit):
        main(["profile"])
