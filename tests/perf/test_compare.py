"""The BENCH comparison: thresholds, overrides, rendering, verdicts."""

from __future__ import annotations

import pytest

from repro.perf.bench import BENCH_SCHEMA, BENCH_SCHEMA_VERSION
from repro.perf.compare import (
    compare_documents,
    parse_threshold_overrides,
    render_comparison,
    render_markdown,
)


def _document(rows):
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmarks": {
            name: {
                "wall_time_s": wall,
                "events_per_sec": 1000.0 / wall,
                "packets_per_sec": 500.0 / wall,
                "peak_rss_bytes": 1 << 20,
            }
            for name, wall in rows.items()
        },
    }


def test_identical_documents_pass():
    doc = _document({"a": 1.0, "b": 0.5})
    comparison = compare_documents(doc, doc)
    assert comparison.ok
    assert [d.name for d in comparison.deltas] == ["a", "b"]
    assert all(d.wall_delta == 0.0 for d in comparison.deltas)


def test_regression_beyond_threshold_fails():
    comparison = compare_documents(
        _document({"a": 1.0, "b": 1.0}),
        _document({"a": 1.6, "b": 1.1}),  # a: +60%, b: +10%
        threshold_pct=50.0,
    )
    assert not comparison.ok
    assert [d.name for d in comparison.regressions] == ["a"]
    assert comparison.deltas[0].wall_delta == pytest.approx(0.6)


def test_speedup_never_fails():
    comparison = compare_documents(
        _document({"a": 2.0}), _document({"a": 0.5}), threshold_pct=10.0
    )
    assert comparison.ok
    assert comparison.deltas[0].wall_delta == pytest.approx(-0.75)


def test_per_benchmark_override_loosens_and_tightens():
    baseline = _document({"micro": 0.01, "macro": 10.0})
    candidate = _document({"micro": 0.02, "macro": 11.0})  # +100%, +10%
    comparison = compare_documents(
        baseline, candidate, threshold_pct=50.0,
        per_benchmark_pct={"micro": 150.0, "macro": 5.0},
    )
    assert [d.name for d in comparison.regressions] == ["macro"]


def test_one_sided_benchmarks_reported_not_failed():
    comparison = compare_documents(
        _document({"a": 1.0, "old": 1.0}), _document({"a": 1.0, "new": 1.0})
    )
    assert comparison.ok
    assert comparison.only_in_baseline == ["old"]
    assert comparison.only_in_candidate == ["new"]
    text = render_comparison(comparison)
    assert "only in baseline" in text
    assert "only in candidate" in text


def test_render_verdicts():
    comparison = compare_documents(
        _document({"a": 1.0, "b": 1.0}), _document({"a": 3.0, "b": 1.0})
    )
    text = render_comparison(comparison)
    assert "REGRESSED" in text
    assert "FAIL: 1 regression(s): a" in text
    ok_text = render_comparison(compare_documents(_document({"b": 1.0}),
                                                  _document({"b": 1.0})))
    assert "OK: 1 benchmark(s) within thresholds" in ok_text


def test_render_markdown_table_and_verdicts():
    comparison = compare_documents(
        _document({"a": 1.0, "b": 1.0, "old": 1.0}),
        _document({"a": 3.0, "b": 1.0, "new": 1.0}),
    )
    text = render_markdown(comparison)
    lines = text.splitlines()
    # A well-formed GitHub table: header, separator, one row per
    # benchmark, with regressed rows bolded for the job summary.
    assert lines[0].startswith("| benchmark |")
    assert set(lines[1].strip("|").split("|")) <= {"---", "---:"}
    assert "| **a** |" in text and "**REGRESSED**" in text
    assert "| b |" in text
    assert "only in baseline" in text and "only in candidate" in text
    assert "**FAIL**: 1 regression(s): a" in text
    ok_text = render_markdown(compare_documents(_document({"b": 1.0}),
                                                _document({"b": 1.0})))
    assert "**OK**: 1 benchmark(s) within thresholds" in ok_text
    assert "REGRESSED" not in ok_text


def test_parse_threshold_overrides():
    assert parse_threshold_overrides(["a=10", "b=2.5"]) == {"a": 10.0, "b": 2.5}
    with pytest.raises(ValueError, match="NAME=PCT"):
        parse_threshold_overrides(["nonsense"])
    with pytest.raises(ValueError, match="must be a number"):
        parse_threshold_overrides(["a=fast"])
