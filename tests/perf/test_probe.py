"""PerfProbe mechanics: counters, spans, arming, ambient activation."""

from __future__ import annotations

from repro.build import ScenarioSpec, build_simulation
from repro.perf import PerfProbe, active_probe, arm_simulator, peak_rss_bytes, profiled
from repro.sim.simulator import Simulator

SCENARIO = {
    "name": "probe-smoke",
    "seed": 3,
    "duration": 15.0,
    "topology": {"capacity_bps": 400_000, "rtt": 0.1, "pkt_size": 300},
    "queue": {"kind": "droptail"},
    "workloads": [{"type": "bulk", "n_flows": 4}],
}


def test_simulator_counters():
    sim = Simulator(seed=1)
    probe = PerfProbe()
    arm_simulator(probe, sim)
    fired = []
    events = [sim.schedule(0.01 * i, fired.append, (i,)) for i in range(10)]
    events[3].cancel()
    events[7].cancel()
    sim.run()
    assert fired == [0, 1, 2, 4, 5, 6, 8, 9]
    assert probe.callbacks_dispatched == 8
    # events_popped counts live dispatches; the two cancelled events are
    # reaped as tombstones (by peek or pop, whichever sees them first).
    assert probe.events_popped == 8
    assert probe.heap_discards == 2
    # The whole run sits inside one sim.run span.
    assert probe.spans["sim.run"].calls == 1
    assert probe.spans["sim.run"].total_s > 0


def test_event_queue_pop_counts_discards():
    from repro.sim.events import EventQueue

    probe = PerfProbe()
    queue = EventQueue()
    queue.perf = probe
    first = queue.push(1.0, lambda: None)
    second = queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.pop() is second
    assert probe.events_popped == 1
    assert probe.heap_discards == 1


def test_counter_summary_merges_hot_and_named():
    probe = PerfProbe()
    probe.events_popped = 5
    probe.count("taq.evictions")
    probe.count("taq.evictions", 2)
    summary = probe.counter_summary()
    assert summary == {"sim.events_popped": 5, "taq.evictions": 3}
    # Zero-valued hot counters stay out of the roll-up.
    assert "net.packets_dropped" not in summary


def test_span_aggregation():
    probe = PerfProbe()
    for _ in range(3):
        with probe.span("phase"):
            pass
    stats = probe.spans["phase"]
    assert stats.calls == 3
    assert stats.total_s >= stats.max_s > 0
    rendered = probe.render()
    assert "phase: calls=3" in rendered


def test_profiled_arms_built_scenarios():
    assert active_probe() is None
    with profiled() as probe:
        assert active_probe() is probe
        built = build_simulation(ScenarioSpec.from_document(SCENARIO))
        built.run()
    assert active_probe() is None
    # The run flowed through every instrumented layer.
    assert probe.events_popped > 0
    assert probe.callbacks_dispatched > 0
    assert probe.packets_enqueued > 0
    assert probe.packets_dequeued > 0
    assert probe.packets_delivered > 0
    assert probe.spans["sim.run"].calls == 1


def test_profiled_nesting_restores_outer_probe():
    with profiled() as outer:
        with profiled() as inner:
            assert active_probe() is inner
        assert active_probe() is outer
    assert active_probe() is None


def test_unarmed_components_stay_unarmed():
    built = build_simulation(ScenarioSpec.from_document(SCENARIO))
    assert built.sim.perf is None
    assert built.sim.events.perf is None
    assert built.queue.perf is None


def test_peak_rss_is_positive_on_posix():
    assert peak_rss_bytes() > 0
