"""Offered-load accounting and drop-observer fan-out, all disciplines.

``loss_rate()`` is drops over offered load (accepted + dropped), and a
push-out eviction must count as exactly one unit of lost offered load —
the victim moves from the "enqueued" column to the "dropped" column, it
does not appear in both.
"""

import random

import pytest

from repro.core import TAQQueue
from repro.net.packet import DATA, Packet
from repro.queues import DropTailQueue, REDQueue, SFQQueue


def make_queue(kind: str):
    if kind == "droptail":
        return DropTailQueue(8)
    if kind == "red":
        return REDQueue(8, random.Random(1), mean_pkt_size=500)
    if kind == "sfq":
        return SFQQueue(8, buckets=4)
    if kind == "taq":
        return TAQQueue(8, default_epoch=0.2)
    raise AssertionError(kind)


KINDS = ("droptail", "red", "sfq", "taq")


def drive(queue, arrivals: int = 300, flows: int = 8) -> int:
    """Offer *arrivals* packets with occasional service; returns count."""
    now = 0.0
    for i in range(arrivals):
        now += 0.01
        queue.enqueue(Packet(i % flows, DATA, seq=i // flows, size=500), now)
        if i % 7 == 6:
            queue.dequeue(now)
    return arrivals


@pytest.mark.parametrize("kind", KINDS)
def test_offered_load_invariant(kind):
    # Every offered packet ends up in exactly one column — enqueued or
    # dropped — even when it was first accepted and later pushed out.
    queue = make_queue(kind)
    offered = drive(queue)
    assert queue.dropped > 0, "test must exercise the drop path"
    assert queue.enqueued + queue.dropped == offered


@pytest.mark.parametrize("kind", KINDS)
def test_loss_rate_is_dropped_over_offered(kind):
    queue = make_queue(kind)
    drive(queue)
    offered = queue.enqueued + queue.dropped
    assert queue.loss_rate() == pytest.approx(queue.dropped / offered)
    assert 0.0 < queue.loss_rate() < 1.0


def test_loss_rate_zero_when_nothing_offered():
    assert DropTailQueue(4).loss_rate() == 0.0


@pytest.mark.parametrize("kind", KINDS)
def test_multiple_observers_called_in_registration_order(kind):
    queue = make_queue(kind)
    calls = []
    queue.add_drop_observer(lambda pkt, now: calls.append("first"))
    queue.add_drop_observer(lambda pkt, now: calls.append("second"))
    drive(queue)
    assert queue.dropped > 0
    # Each drop fans out to every observer, first-registered first, and
    # each drop (including push-out evictions) notifies exactly once.
    assert calls == ["first", "second"] * queue.dropped


def test_sfq_push_out_eviction_counted_once():
    queue = SFQQueue(2, buckets=4)
    victims = []
    queue.add_drop_observer(lambda pkt, now: victims.append(pkt.seq))
    for seq in range(3):
        assert queue.enqueue(Packet(seq, DATA, seq=seq, size=500), 0.1 * (seq + 1))
    # Three offered, one pushed out: 2 buffered + 1 dropped == 3.
    assert len(queue) == 2
    assert queue.dropped == 1
    assert queue.enqueued == 2
    assert len(victims) == 1
    assert queue.loss_rate() == pytest.approx(1 / 3)


def test_taq_push_out_eviction_counted_once():
    queue = TAQQueue(2, default_epoch=0.2)
    dropped_packets = []
    queue.add_drop_observer(lambda pkt, now: dropped_packets.append(pkt))
    offered = 0
    now = 0.0
    for seq in range(40):
        now += 0.01
        queue.enqueue(Packet(seq % 4, DATA, seq=seq // 4, size=500), now)
        offered += 1
    assert queue.dropped == len(dropped_packets)
    assert queue.enqueued + queue.dropped == offered
