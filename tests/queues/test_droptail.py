"""Unit tests for the DropTail queue."""

from repro.net.packet import DATA, Packet
from repro.queues.droptail import DropTailQueue


def pkt(flow=1, seq=0):
    return Packet(flow, DATA, seq=seq, size=500)


def test_fifo_order():
    queue = DropTailQueue(10)
    packets = [pkt(seq=i) for i in range(5)]
    for p in packets:
        assert queue.enqueue(p, 0.0)
    out = [queue.dequeue(0.0) for _ in range(5)]
    assert out == packets


def test_drops_when_full():
    queue = DropTailQueue(2)
    assert queue.enqueue(pkt(), 0.0)
    assert queue.enqueue(pkt(), 0.0)
    assert not queue.enqueue(pkt(), 0.0)
    assert queue.dropped == 1
    assert len(queue) == 2


def test_dequeue_empty_returns_none():
    queue = DropTailQueue(2)
    assert queue.dequeue(0.0) is None


def test_drop_observer_notified():
    queue = DropTailQueue(1)
    drops = []
    queue.add_drop_observer(lambda p, now: drops.append((p, now)))
    queue.enqueue(pkt(seq=1), 0.0)
    victim = pkt(seq=2)
    queue.enqueue(victim, 3.5)
    assert drops == [(victim, 3.5)]


def test_loss_rate_accounting():
    queue = DropTailQueue(1)
    queue.enqueue(pkt(), 0.0)
    queue.enqueue(pkt(), 0.0)  # dropped
    assert queue.loss_rate() == 0.5


def test_capacity_validation():
    import pytest

    with pytest.raises(ValueError):
        DropTailQueue(0)
