"""Unit tests for RED."""

import random

import pytest

from repro.net.packet import DATA, Packet
from repro.queues.red import REDQueue


def pkt(flow=1, seq=0):
    return Packet(flow, DATA, seq=seq, size=500)


def make_red(capacity=20, **kwargs):
    return REDQueue(capacity, random.Random(1), **kwargs)


def test_below_min_th_never_drops():
    queue = make_red(capacity=100, min_th=50, max_th=90)
    for i in range(30):
        assert queue.enqueue(pkt(seq=i), i * 0.01)
    assert queue.dropped == 0


def test_forced_drop_when_full():
    queue = make_red(capacity=4, min_th=1, max_th=3, max_p=0.0)
    results = [queue.enqueue(pkt(seq=i), 0.0) for i in range(6)]
    assert results.count(False) >= 1
    assert queue.forced_drops >= 1


def test_early_drops_happen_between_thresholds():
    queue = make_red(capacity=1000, min_th=2, max_th=500, max_p=0.5, weight=0.5)
    dropped = 0
    for i in range(200):
        if not queue.enqueue(pkt(seq=i), i * 0.001):
            dropped += 1
    assert queue.early_drops > 0
    assert dropped == queue.dropped


def test_avg_tracks_queue_growth():
    queue = make_red(capacity=100, min_th=50, max_th=90, weight=0.5)
    for i in range(20):
        queue.enqueue(pkt(seq=i), 0.0)
    assert queue.avg > 5.0


def test_avg_decays_when_idle():
    class FakeLink:
        capacity_bps = 8000.0  # 500B pkt tx = 0.5s

    queue = make_red(capacity=100, min_th=50, max_th=90, weight=0.5)
    queue.attach(FakeLink())
    for i in range(10):
        queue.enqueue(pkt(seq=i), 0.0)
    while queue.dequeue(1.0) is not None:
        pass
    avg_before = queue.avg
    queue.enqueue(pkt(), 100.0)  # long idle gap
    assert queue.avg < avg_before


def test_threshold_validation():
    # Inverted thresholds are an error; equal thresholds are legal (the
    # ramp collapses to a hard threshold — see test_red_edges.py).
    with pytest.raises(ValueError):
        make_red(capacity=10, min_th=5, max_th=4)
    with pytest.raises(ValueError):
        make_red(capacity=10, min_th=-1, max_th=4)


def test_parameter_range_validation():
    with pytest.raises(ValueError):
        make_red(capacity=10, max_p=1.5)
    with pytest.raises(ValueError):
        make_red(capacity=10, max_p=-0.1)
    with pytest.raises(ValueError):
        make_red(capacity=10, weight=1.5)
    with pytest.raises(ValueError):
        make_red(capacity=10, weight=-0.1)


def test_fifo_within_red():
    queue = make_red(capacity=100, min_th=90, max_th=99)
    first, second = pkt(seq=1), pkt(seq=2)
    queue.enqueue(first, 0.0)
    queue.enqueue(second, 0.0)
    assert queue.dequeue(0.0) is first
    assert queue.dequeue(0.0) is second
