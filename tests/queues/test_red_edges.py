"""RED edge-case behaviour: degenerate parameter settings.

The check-subsystem PR pins down two configurations that used to be
rejected or untested:

* ``min_th == max_th`` — the linear drop ramp collapses to a hard
  threshold.  The ``avg >= max_th`` branch fires before the ramp is
  reached, so the ``(max_th - min_th)`` division is never evaluated and
  every packet above the threshold is force-dropped.
* ``weight == 0`` — the EWMA average is frozen at its initial value of
  zero, so RED never sees congestion and degenerates to pure DropTail
  (only the capacity backstop drops).
"""

import random

from repro.net.packet import DATA, Packet
from repro.queues.droptail import DropTailQueue
from repro.queues.red import REDQueue


def pkt(flow=1, seq=0):
    return Packet(flow, DATA, seq=seq, size=500)


def make_red(capacity=20, **kwargs):
    return REDQueue(capacity, random.Random(1), **kwargs)


def test_equal_thresholds_accepted():
    queue = make_red(capacity=10, min_th=5, max_th=5)
    assert queue.min_th == queue.max_th == 5


def test_equal_thresholds_act_as_hard_threshold():
    # weight=1 makes avg track the instantaneous queue length, so the
    # threshold behaviour is deterministic: once avg >= max_th every
    # arrival is force-dropped, with no early (probabilistic) drops.
    queue = make_red(capacity=100, min_th=5, max_th=5, weight=1.0)
    outcomes = [queue.enqueue(pkt(seq=i), 0.0) for i in range(20)]
    assert queue.early_drops == 0
    assert queue.forced_drops > 0
    assert queue.forced_drops == outcomes.count(False)
    # Everything below the threshold got through untouched.
    assert all(outcomes[:5])


def test_equal_thresholds_never_divide_by_zero():
    queue = make_red(capacity=50, min_th=3, max_th=3, weight=0.7)
    # Push enough load around the threshold that a ramp evaluation
    # would raise ZeroDivisionError if it were ever reached.
    for i in range(200):
        queue.enqueue(pkt(seq=i), i * 0.001)
        if i % 3 == 0:
            queue.dequeue(i * 0.001)
    assert queue.early_drops == 0


def test_zero_weight_freezes_average():
    queue = make_red(capacity=30, min_th=1, max_th=10, weight=0.0)
    for i in range(25):
        queue.enqueue(pkt(seq=i), 0.0)
    assert queue.avg == 0.0


def test_zero_weight_degenerates_to_droptail():
    red = make_red(capacity=8, min_th=1, max_th=4, weight=0.0)
    droptail = DropTailQueue(8)
    red_out = [red.enqueue(pkt(seq=i), 0.0) for i in range(20)]
    dt_out = [droptail.enqueue(pkt(seq=i), 0.0) for i in range(20)]
    assert red_out == dt_out
    assert red.dropped == droptail.dropped
    assert red.early_drops == 0
    # Same drain order as DropTail too.
    red_seqs, dt_seqs = [], []
    while (p := red.dequeue(0.0)) is not None:
        red_seqs.append(p.seq)
    while (p := droptail.dequeue(0.0)) is not None:
        dt_seqs.append(p.seq)
    assert red_seqs == dt_seqs
