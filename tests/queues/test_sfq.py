"""Unit tests for Stochastic Fair Queueing."""

from repro.net.packet import DATA, Packet
from repro.queues.sfq import SFQQueue


def pkt(flow, seq=0):
    return Packet(flow, DATA, seq=seq, size=500)


def test_round_robin_across_flows():
    queue = SFQQueue(100, buckets=16)
    # Flow A floods; flow B sends one packet; B must not wait behind all of A.
    for i in range(10):
        queue.enqueue(pkt(1, seq=i), 0.0)
    queue.enqueue(pkt(2, seq=0), 0.0)
    drained = [queue.dequeue(0.0).flow_id for _ in range(11)]
    assert 2 in drained[:2 + 1]  # B served within the first service round


def test_buffer_stealing_evicts_longest_bucket():
    queue = SFQQueue(4, buckets=16)
    for i in range(4):
        queue.enqueue(pkt(1, seq=i), 0.0)
    drops = []
    queue.add_drop_observer(lambda p, now: drops.append(p))
    assert queue.enqueue(pkt(2, seq=0), 0.0)  # steals from flow 1
    assert len(drops) == 1
    assert drops[0].flow_id == 1
    assert len(queue) == 4


def test_occupancy_tracking():
    queue = SFQQueue(10, buckets=4)
    for i in range(6):
        queue.enqueue(pkt(i, seq=0), 0.0)
    assert len(queue) == 6
    for _ in range(6):
        queue.dequeue(0.0)
    assert len(queue) == 0
    assert queue.dequeue(0.0) is None


def test_perturb_changes_mapping_for_some_flow():
    a = SFQQueue(10, buckets=8, perturbation=0)
    changed = False
    for flow in range(100):
        before = a._bucket_of(flow)
        a.perturb(12345)
        after = a._bucket_of(flow)
        a.perturb(0)
        if before != after:
            changed = True
            break
    assert changed


def test_all_drained_in_some_order():
    queue = SFQQueue(100, buckets=8)
    sent = [pkt(f, seq=s) for f in range(5) for s in range(3)]
    for p in sent:
        queue.enqueue(p, 0.0)
    got = []
    while (p := queue.dequeue(0.0)) is not None:
        got.append(p)
    assert sorted(id(p) for p in got) == sorted(id(p) for p in sent)


def test_per_flow_fifo_preserved():
    queue = SFQQueue(100, buckets=8)
    for s in range(5):
        queue.enqueue(pkt(7, seq=s), 0.0)
    seqs = []
    while (p := queue.dequeue(0.0)) is not None:
        seqs.append(p.seq)
    assert seqs == sorted(seqs)


def test_bucket_validation():
    import pytest

    with pytest.raises(ValueError):
        SFQQueue(10, buckets=0)
