"""SFQ edge case: bucket-count 1 must degenerate to DropTail exactly.

With a single bucket there is no fairness to enforce — every flow hashes
to the same FIFO, and McKenney's buffer stealing would only evict the
queue's own tail to admit the newcomer.  That keeps the drop *count*
equal to DropTail's but changes which packet is lost (tail vs arrival),
which shifts the retransmission pattern.  The fix pins the exact
degeneration: at capacity the arriving packet is rejected, identical to
DropTail packet-for-packet.
"""

from repro.net.packet import DATA, Packet
from repro.queues.droptail import DropTailQueue
from repro.queues.sfq import SFQQueue


def pkt(flow, seq=0):
    return Packet(flow, DATA, seq=seq, size=500)


def mixed_arrivals(n=30):
    # Several flows interleaved so the single bucket really is shared.
    return [pkt(flow=i % 5, seq=i) for i in range(n)]


def test_single_bucket_rejects_arrival_at_capacity():
    queue = SFQQueue(4, buckets=1)
    for i in range(4):
        assert queue.enqueue(pkt(1, seq=i), 0.0)
    resident_before = list(queue._queues[0])
    assert not queue.enqueue(pkt(2, seq=0), 0.0)
    # Nothing already queued was evicted.
    assert list(queue._queues[0]) == resident_before
    assert queue.dropped == 1


def test_single_bucket_matches_droptail_packet_for_packet():
    sfq = SFQQueue(6, buckets=1)
    droptail = DropTailQueue(6)
    arrivals = mixed_arrivals()
    sfq_out = [sfq.enqueue(p, 0.0) for p in arrivals]
    dt_out = [droptail.enqueue(p, 0.0) for p in arrivals]
    assert sfq_out == dt_out
    assert sfq.dropped == droptail.dropped
    assert sfq.enqueued == droptail.enqueued
    # Identical drain order (same packet objects in the same order).
    sfq_drained, dt_drained = [], []
    while (p := sfq.dequeue(0.0)) is not None:
        sfq_drained.append(id(p))
    while (p := droptail.dequeue(0.0)) is not None:
        dt_drained.append(id(p))
    assert sfq_drained == dt_drained


def test_single_bucket_matches_droptail_under_drain_interleaving():
    sfq = SFQQueue(3, buckets=1)
    droptail = DropTailQueue(3)
    for i, p in enumerate(mixed_arrivals(40)):
        assert sfq.enqueue(p, 0.0) == droptail.enqueue(p, 0.0)
        if i % 4 == 3:
            a, b = sfq.dequeue(0.0), droptail.dequeue(0.0)
            assert (a is None) == (b is None)
            if a is not None:
                assert a is b
    assert sfq.dropped == droptail.dropped


def test_multi_bucket_buffer_stealing_unchanged():
    # The buckets == 1 special case must not leak into real SFQ: with
    # several buckets, a newcomer still steals from the longest bucket.
    queue = SFQQueue(4, buckets=16)
    for i in range(4):
        queue.enqueue(pkt(1, seq=i), 0.0)
    drops = []
    queue.add_drop_observer(lambda p, now: drops.append(p))
    assert queue.enqueue(pkt(2, seq=0), 0.0)
    assert len(drops) == 1 and drops[0].flow_id == 1
