"""Unit tests for the event queue."""

from repro.sim.events import EventQueue


def test_push_pop_orders_by_time():
    queue = EventQueue()
    order = []
    queue.push(3.0, order.append, ("c",))
    queue.push(1.0, order.append, ("a",))
    queue.push(2.0, order.append, ("b",))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.callback(*event.args)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_fifo_order():
    queue = EventQueue()
    order = []
    for name in "abcde":
        queue.push(1.0, order.append, (name,))
    while (event := queue.pop()) is not None:
        event.callback(*event.args)
    assert order == list("abcde")


def test_cancelled_event_is_skipped():
    queue = EventQueue()
    keep = queue.push(1.0, lambda: None)
    cancel = queue.push(0.5, lambda: None)
    cancel.cancel()
    assert queue.pop() is keep


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert queue.pop() is None


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(0.5, lambda: None)
    queue.push(2.0, lambda: None)
    assert queue.peek_time() == 0.5
    first.cancel()
    assert queue.peek_time() == 2.0


def test_len_counts_only_live_events():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    assert len(queue) == 5
    events[0].cancel()
    events[3].cancel()
    assert len(queue) == 3


def test_empty_queue_pop_and_peek():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None
    assert not queue


def test_pending_property_lifecycle():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert event.pending
    popped = queue.pop()
    popped.fired = True
    assert not popped.pending
