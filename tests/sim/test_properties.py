"""Property tests for the determinism backbone: rng streams + event heap.

Two guarantees everything else in the repo (golden files, the parallel
cache, the fuzzer's shrunk repros) silently relies on:

* :class:`repro.sim.rng.RngRegistry` — same root seed ⇒ bit-identical
  streams, independent of creation order; distinct names ⇒ independent
  streams.
* :class:`repro.sim.events.EventQueue` — events pop in ``(time, seq)``
  order whatever the interleaving of schedules and cancels, so
  equal-time events always fire in FIFO (schedule) order and
  cancellation can never reorder survivors.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.rng import RngRegistry

# ---------------------------------------------------------------------------
# RngRegistry


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    names=st.lists(
        st.text(alphabet="abcdefgh-", min_size=1, max_size=8),
        min_size=1, max_size=6, unique=True,
    ),
)
def test_property_same_seed_same_streams(seed, names):
    a, b = RngRegistry(seed), RngRegistry(seed)
    for name in names:
        assert [a.stream(name).random() for _ in range(5)] == \
               [b.stream(name).random() for _ in range(5)]


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    names=st.lists(
        st.text(alphabet="abcdefgh-", min_size=1, max_size=8),
        min_size=2, max_size=6, unique=True,
    ),
)
def test_property_creation_order_is_irrelevant(seed, names):
    # Registry A touches the streams in the given order, B in reverse:
    # each named stream must still produce the same values, i.e. adding
    # a new consumer of randomness cannot perturb existing streams.
    a, b = RngRegistry(seed), RngRegistry(seed)
    forward = {name: a.stream(name).random() for name in names}
    backward = {name: b.stream(name).random() for name in reversed(names)}
    assert forward == backward


def test_distinct_names_give_distinct_streams():
    registry = RngRegistry(7)
    draws = {name: registry.stream(name).random() for name in
             ("flows", "red", "web", "noise", "trace")}
    assert len(set(draws.values())) == len(draws)


def test_spawn_derives_stable_children():
    assert RngRegistry(3).spawn("trial-1").seed == RngRegistry(3).spawn("trial-1").seed
    assert RngRegistry(3).spawn("trial-1").seed != RngRegistry(3).spawn("trial-2").seed


# ---------------------------------------------------------------------------
# EventQueue

# An operation script: each entry schedules an event at one of a few
# discrete times (forcing plenty of ties), and optionally cancels a
# previously scheduled event chosen by index.
ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),      # time bucket
        st.one_of(st.none(), st.integers(min_value=0, max_value=100)),
    ),
    min_size=1, max_size=60,
)


def run_script(script):
    queue = EventQueue()
    handles = []
    for time_bucket, cancel_index in script:
        handles.append(queue.push(float(time_bucket), lambda: None))
        if cancel_index is not None and handles:
            handles[cancel_index % len(handles)].cancel()
    popped = []
    while (event := queue.pop()) is not None:
        popped.append(event)
    return handles, popped


@settings(max_examples=200, deadline=None)
@given(ops)
def test_property_pop_order_is_time_then_fifo(script):
    handles, popped = run_script(script)
    keys = [(e.time, e.seq) for e in popped]
    assert keys == sorted(keys)
    # Equal-time events stay in schedule order (seq strictly increasing
    # within a time bucket) — the FIFO tie-break is pinned, not "any
    # stable-ish order".
    for earlier, later in zip(popped, popped[1:]):
        if earlier.time == later.time:
            assert earlier.seq < later.seq


@settings(max_examples=200, deadline=None)
@given(ops)
def test_property_cancellation_never_reorders_survivors(script):
    handles, popped = run_script(script)
    survivors = [h for h in handles if not h.cancelled]
    # Exactly the non-cancelled events pop, in the same relative order
    # they would have popped without any cancellations.
    assert popped == sorted(survivors, key=lambda e: (e.time, e.seq))


@settings(max_examples=100, deadline=None)
@given(ops, st.integers(min_value=0, max_value=2**31))
def test_property_same_script_same_order(script, _salt):
    # Replaying the identical script gives the identical pop order
    # (compared by (time, seq) identity keys, across queue instances).
    _, first = run_script(script)
    _, second = run_script(script)
    assert [(e.time, e.seq) for e in first] == [(e.time, e.seq) for e in second]


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    head = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    head.cancel()
    assert queue.peek_time() == 2.0
    assert len(queue) == 1
