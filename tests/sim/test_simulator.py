"""Unit tests for the simulator run loop and clock."""

import pytest

from repro.sim.simulator import SimulationError, Simulator


def test_clock_advances_to_event_times():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(0.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [0.5, 1.5]


def test_run_until_stops_and_sets_clock():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, (1,))
    sim.schedule(15.0, fired.append, (2,))
    sim.run(until=10.0)
    assert fired == [1]
    assert sim.now == 10.0
    sim.run(until=20.0)
    assert fired == [1, 2]


def test_event_at_exactly_until_fires():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, (1,))
    sim.run(until=10.0)
    assert fired == [1]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    log = []

    def first():
        log.append("first")
        sim.schedule(1.0, lambda: log.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert log == ["first", "second"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_max_events_guard():
    sim = Simulator(max_events=10)

    def loop():
        sim.schedule(0.1, loop)

    sim.schedule(0.1, loop)
    with pytest.raises(SimulationError):
        sim.run(until=1e9)


def test_max_events_is_an_exact_budget():
    # Regression: the guard used to fire only after processing event
    # max_events + 1.  Exactly max_events callbacks may run, and the
    # error is raised on the *attempt* to process the next one.
    sim = Simulator(max_events=5)
    fired = []
    for i in range(8):
        sim.schedule(0.1 * (i + 1), fired.append, (i,))
    with pytest.raises(SimulationError):
        sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.processed == 5


def test_max_events_exactly_consumed_does_not_raise():
    sim = Simulator(max_events=3)
    fired = []
    for i in range(3):
        sim.schedule(0.1 * (i + 1), fired.append, (i,))
    sim.run()  # queue drains at exactly the budget: no error
    assert fired == [0, 1, 2]
    assert sim.processed == 3


def test_step_respects_max_events():
    sim = Simulator(max_events=1)
    sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    assert sim.step()
    with pytest.raises(SimulationError):
        sim.step()


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, (1,))
    sim.schedule(2.0, fired.append, (2,))
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_cancelled_timer_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, (1,))
    event.cancel()
    sim.run()
    assert fired == []


def test_rng_streams_are_deterministic_and_independent():
    sim_a = Simulator(seed=42)
    sim_b = Simulator(seed=42)
    a1 = [sim_a.rng.stream("x").random() for _ in range(5)]
    # Interleave another stream in sim_b; "x" must be unaffected.
    sim_b.rng.stream("y").random()
    b1 = [sim_b.rng.stream("x").random() for _ in range(5)]
    assert a1 == b1


def test_rng_different_seeds_differ():
    from repro.sim.rng import RngRegistry

    assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()


def test_rng_spawn_children_differ_by_name():
    from repro.sim.rng import RngRegistry

    root = RngRegistry(7)
    a = root.spawn("trial-1").stream("s").random()
    b = root.spawn("trial-2").stream("s").random()
    assert a != b
