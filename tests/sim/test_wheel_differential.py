"""Differential property tests: the calendar queue vs a reference heap.

The timer wheel in :mod:`repro.sim.events` earns its speed through a
pile of structural cleverness — bucketed slots, a cached head, physical
cancellation, single-slot/spread-mode switches, geometric resizes.
None of that may ever change *what pops next*.  These tests drive the
wheel and a deliberately boring ``heapq``-with-tombstones reference
through identical random schedule/cancel/pop interleavings (including
same-timestamp FIFO ties) and require bit-identical ``(time, seq)``
pop sequences.

Complements ``tests/sim/test_properties.py``: those tests check the
wheel against the *specification* (sorted order, FIFO ties); these
check it against an independent *implementation*, so a bug must appear
in two unrelated structures at once to slip through.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue


class ReferenceHeap:
    """The old event store: a binary heap with lazy tombstones.

    Deliberately minimal — its correctness is obvious by inspection,
    which is the whole point of a differential oracle.
    """

    def __init__(self):
        self._heap = []
        self._cancelled = set()
        self._next_seq = 0

    def push(self, time):
        key = (time, self._next_seq)
        self._next_seq += 1
        heapq.heappush(self._heap, key)
        return key

    def cancel(self, key):
        self._cancelled.add(key)

    def pop(self):
        while self._heap:
            key = heapq.heappop(self._heap)
            if key not in self._cancelled:
                return key
        return None


def _noop():
    pass


# One operation: push at a time drawn from a tie-heavy mix, cancel a
# previously pushed event (by index), or pop.  Times mix a few discrete
# values (forcing FIFO ties) with arbitrary non-negative floats
# (exercising bucket arithmetic at wildly different magnitudes).
_times = st.one_of(
    st.integers(min_value=0, max_value=3).map(float),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _times),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    min_size=1,
    max_size=120,
)


def _run_differential(script, extra_pushes=0):
    """Apply *script* to both structures, then drain both; the observed
    ``(time, seq)`` sequences must match exactly at every step."""
    wheel = EventQueue()
    reference = ReferenceHeap()
    handles = []  # (wheel Event, reference key), in push order
    observed = []

    def push(time):
        handles.append((wheel.push(time, _noop), reference.push(time)))

    for op, value in script:
        if op == "push":
            push(value)
        elif op == "cancel":
            if not handles:
                continue
            event, key = handles[value % len(handles)]
            if event.pending:
                event.cancel()
                reference.cancel(key)
        else:  # pop
            event = wheel.pop()
            expected = reference.pop()
            observed.append((None if event is None else (event.time, event.seq),
                             expected))
    for i in range(extra_pushes):
        # Deterministic spread pushed on top of whatever the script
        # left behind: drives the store across its layout boundary.
        push(0.001 * i)
    while True:
        event = wheel.pop()
        expected = reference.pop()
        observed.append((None if event is None else (event.time, event.seq),
                         expected))
        if event is None or expected is None:
            break
    for got, expected in observed:
        assert got == expected
    assert len(wheel) == 0


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_differential_pop_sequence_matches_reference(script):
    _run_differential(script)


@settings(max_examples=25, deadline=None)
@given(_ops)
def test_differential_across_layout_boundary(script):
    # 700 extra pushes force the single-slot layout to spread into the
    # full wheel mid-run; the drain then shrinks it back.  The pop
    # sequence must not care.
    _run_differential(script, extra_pushes=700)


def test_differential_with_infinite_times():
    # inf cannot be bucketed by float division; the wheel parks such
    # entries in a far bucket.  They must still pop last, in FIFO order,
    # even when the population is large enough to use the spread wheel.
    wheel = EventQueue()
    reference = ReferenceHeap()
    pairs = []
    for i in range(600):
        time = float("inf") if i % 200 == 7 else 0.01 * i
        pairs.append((wheel.push(time, _noop), reference.push(time)))
    for event, key in pairs[::5]:
        event.cancel()
        reference.cancel(key)
    while True:
        event = wheel.pop()
        expected = reference.pop()
        assert (None if event is None else (event.time, event.seq)) == expected
        if expected is None:
            break
