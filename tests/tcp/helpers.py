"""Test harness: a sender/receiver pair joined by a lossy loopback pipe.

Gives TCP unit tests precise control: fixed one-way delay, per-packet
drop predicates (drop the Nth data packet, drop every retransmission,
...), and full packet logs in both directions.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.packet import Packet
from repro.sim.simulator import Simulator
from repro.tcp.receiver import TCPReceiver
from repro.tcp.rto import RtoEstimator
from repro.tcp.sender import TCPSender

DropFn = Callable[[Packet], bool]


class Loopback:
    """A deterministic bidirectional pipe with injectable drops."""

    def __init__(
        self,
        sim: Simulator,
        one_way_delay: float = 0.05,
        drop_data: Optional[DropFn] = None,
        drop_ack: Optional[DropFn] = None,
        **sender_kwargs,
    ) -> None:
        self.sim = sim
        self.delay = one_way_delay
        self.drop_data = drop_data or (lambda p: False)
        self.drop_ack = drop_ack or (lambda p: False)
        self.data_log: List[Packet] = []
        self.ack_log: List[Packet] = []
        self.delivered: List[tuple] = []
        # min_rto below the RFC's 1 s keeps unit tests fast; max_rto of
        # 2 s bounds the worst-case crawl of pathological drop patterns
        # (a conformant flow whose tail segment keeps dying otherwise
        # retries at 60 s pace and blows the property-test horizons).
        sender_kwargs.setdefault("rto", RtoEstimator(min_rto=0.2, max_rto=2.0))
        self.sender = TCPSender(sim, 1, transmit=self._to_receiver, **sender_kwargs)
        self.receiver = TCPReceiver(
            1,
            send=self._to_sender,
            sack=sender_kwargs.get("sack", False),
            on_delivery=lambda n, t: self.delivered.append((t, n)),
        )

    def _to_receiver(self, packet: Packet) -> None:
        self.data_log.append(packet)
        if self.drop_data(packet):
            return
        self.sim.schedule(
            self.delay, lambda p=packet: self.receiver.receive(p, self.sim.now)
        )

    def _to_sender(self, packet: Packet) -> None:
        self.ack_log.append(packet)
        if self.drop_ack(packet):
            return
        self.sim.schedule(
            self.delay, lambda p=packet: self.sender.receive(p, self.sim.now)
        )

    def run(self, until: float = 60.0) -> None:
        self.sender.open()
        self.sim.run(until=until)
