"""Unit tests for the TCP receiver."""

from repro.net.packet import ACK, DATA, FIN, SYN, SYNACK, Packet
from repro.tcp.receiver import TCPReceiver


def make_receiver(**kwargs):
    acks = []
    receiver = TCPReceiver(1, send=acks.append, **kwargs)
    return receiver, acks


def data(seq):
    return Packet(1, DATA, seq=seq, size=500)


def test_syn_triggers_synack():
    receiver, acks = make_receiver()
    receiver.receive(Packet(1, SYN), 0.0)
    assert acks[0].kind == SYNACK


def test_in_order_data_acked_cumulatively():
    receiver, acks = make_receiver()
    for seq in range(3):
        receiver.receive(data(seq), float(seq))
    assert [a.ack_seq for a in acks] == [1, 2, 3]
    assert receiver.rcv_next == 3


def test_out_of_order_generates_dupacks():
    receiver, acks = make_receiver()
    receiver.receive(data(0), 0.0)
    receiver.receive(data(2), 1.0)  # gap at 1
    receiver.receive(data(3), 2.0)
    assert [a.ack_seq for a in acks] == [1, 1, 1]


def test_gap_fill_acks_entire_buffered_run():
    receiver, acks = make_receiver()
    receiver.receive(data(0), 0.0)
    receiver.receive(data(2), 1.0)
    receiver.receive(data(1), 2.0)
    assert acks[-1].ack_seq == 3
    assert receiver.out_of_order == set()


def test_duplicate_data_counted_and_reacked():
    receiver, acks = make_receiver()
    receiver.receive(data(0), 0.0)
    receiver.receive(data(0), 1.0)
    assert receiver.duplicate_segments == 1
    assert acks[-1].ack_seq == 1


def test_delivery_callback_reports_progress():
    deliveries = []
    receiver = TCPReceiver(1, send=lambda p: None, on_delivery=lambda n, t: deliveries.append((t, n)))
    receiver.receive(data(0), 0.5)
    receiver.receive(data(2), 1.0)
    receiver.receive(data(1), 1.5)
    assert deliveries == [(0.5, 1), (1.5, 3)]


def test_sack_blocks_describe_out_of_order_runs():
    receiver, acks = make_receiver(sack=True)
    receiver.receive(data(0), 0.0)
    receiver.receive(data(2), 1.0)
    receiver.receive(data(3), 2.0)
    receiver.receive(data(5), 3.0)
    assert acks[-1].sack == [(2, 4), (5, 6)]


def test_sack_limited_to_three_blocks():
    receiver, acks = make_receiver(sack=True)
    for seq in (2, 4, 6, 8, 10):
        receiver.receive(data(seq), 0.0)
    assert len(acks[-1].sack) == 3


def test_no_sack_when_disabled():
    receiver, acks = make_receiver(sack=False)
    receiver.receive(data(2), 0.0)
    assert acks[-1].sack is None


def test_fin_sets_flag_and_acks():
    receiver, acks = make_receiver()
    receiver.receive(Packet(1, FIN), 0.0)
    assert receiver.fin_received
    assert acks[-1].kind == ACK


def test_delayed_ack_mode_acks_every_other_segment():
    receiver, acks = make_receiver(delayed_ack=True)
    receiver.receive(data(0), 0.0)  # held
    assert len(acks) == 0
    receiver.receive(data(1), 0.1)  # flushes
    assert len(acks) == 1
    assert acks[0].ack_seq == 2


def test_delayed_ack_timer_flushes_lone_segment():
    from repro.sim.simulator import Simulator
    from repro.tcp.receiver import TCPReceiver

    sim = Simulator()
    acks = []
    receiver = TCPReceiver(1, send=acks.append, delayed_ack=True, sim=sim)
    sim.schedule(0.0, lambda: receiver.receive(data(0), 0.0))
    sim.run(until=0.1)
    assert acks == []  # still held
    sim.run(until=0.3)  # RFC 1122 timer (200 ms) fires
    assert len(acks) == 1
    assert acks[0].ack_seq == 1


def test_delayed_ack_timer_cancelled_by_second_segment():
    from repro.sim.simulator import Simulator
    from repro.tcp.receiver import TCPReceiver

    sim = Simulator()
    acks = []
    receiver = TCPReceiver(1, send=acks.append, delayed_ack=True, sim=sim)
    sim.schedule(0.0, lambda: receiver.receive(data(0), 0.0))
    sim.schedule(0.05, lambda: receiver.receive(data(1), 0.05))
    sim.run(until=1.0)
    assert len(acks) == 1  # flushed by the pair, not doubled by the timer
