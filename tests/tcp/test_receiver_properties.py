"""Property tests: the receiver reassembles any arrival order.

Whatever order (with duplication) segments arrive in, the receiver's
in-order prefix must equal the set of contiguous segments received, the
SACK blocks must exactly describe the out-of-order buffer, and delivery
callbacks must be monotone.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import DATA, Packet
from repro.tcp.receiver import TCPReceiver


def deliver_sequence(seqs, sack=False):
    acks = []
    deliveries = []
    receiver = TCPReceiver(
        1, send=acks.append, sack=sack,
        on_delivery=lambda n, t: deliveries.append(n),
    )
    for i, seq in enumerate(seqs):
        receiver.receive(Packet(1, DATA, seq=seq, size=500), float(i))
    return receiver, acks, deliveries


@settings(max_examples=100, deadline=None)
@given(st.permutations(list(range(12))))
def test_property_any_permutation_reassembles(seqs):
    receiver, acks, deliveries = deliver_sequence(seqs)
    assert receiver.rcv_next == 12
    assert receiver.out_of_order == set()
    assert acks[-1].ack_seq == 12
    # Delivery progress is strictly monotone.
    assert deliveries == sorted(deliveries)
    assert len(set(deliveries)) == len(deliveries)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=60))
def test_property_arbitrary_arrivals_invariants(seqs):
    receiver, acks, _ = deliver_sequence(seqs, sack=True)
    seen = set(seqs)
    # rcv_next is exactly the length of the contiguous prefix received.
    expected_next = 0
    while expected_next in seen:
        expected_next += 1
    assert receiver.rcv_next == expected_next
    # The out-of-order buffer holds exactly the received-but-gapped seqs.
    assert receiver.out_of_order == {s for s in seen if s > expected_next}
    # One ACK per data packet (no delayed acks), cumulative field sane.
    assert len(acks) == len(seqs)
    for ack in acks:
        assert 0 <= ack.ack_seq <= 16


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=60))
def test_property_sack_blocks_describe_buffer(seqs):
    receiver, acks, _ = deliver_sequence(seqs, sack=True)
    blocks = acks[-1].sack
    buffered = receiver.out_of_order
    if not buffered:
        assert blocks is None
        return
    covered = set()
    previous_hi = None
    for lo, hi in blocks:
        assert lo < hi
        if previous_hi is not None:
            assert lo > previous_hi  # disjoint, ordered, non-adjacent
        previous_hi = hi
        covered.update(range(lo, hi))
    # Blocks may be capped at 3, but everything they claim is buffered.
    assert covered <= buffered
    if len(blocks) < 3:
        assert covered == buffered


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=9), min_size=5, max_size=80),
)
def test_property_duplicates_counted(seqs):
    receiver, _, _ = deliver_sequence(seqs)
    # Every arrival beyond the first per seq is a duplicate.
    from collections import Counter

    counts = Counter(seqs)
    expected_duplicates = sum(c - 1 for c in counts.values())
    assert receiver.duplicate_segments == expected_duplicates
