"""Property tests: TCP liveness under arbitrary bounded loss.

The single most important system property: no loss pattern may deadlock
a connection.  As long as the network eventually delivers (the drop
budget is finite), every sized transfer completes — across variants,
with and without SACK, with drops targeting data, ACKs, or both.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.simulator import Simulator
from repro.tcp.spr import SprSender
from repro.tcp.variants import CubicSender, TahoeSender

from tests.tcp.helpers import Loopback


class BudgetedDropper:
    """Deterministic arbitrary-looking drops with two liveness bounds:
    a total budget and a per-segment cap (a segment is dropped at most
    ``per_seq_cap`` times, so every transfer can finish within the
    test horizon despite exponential RTO backoff)."""

    def __init__(self, seed: int, rate_percent: int, budget: int = 200,
                 per_seq_cap: int = 3):
        self.seed = seed
        self.rate = rate_percent
        self.budget = budget
        self.per_seq_cap = per_seq_cap
        self.count = 0
        self.per_seq: dict = {}

    def __call__(self, packet) -> bool:
        self.count += 1
        if self.budget <= 0:
            return False
        if self.per_seq.get(packet.seq, 0) >= self.per_seq_cap:
            return False
        # Cheap deterministic hash of (seed, arrival index, seq).
        h = (self.seed * 1103515245 + self.count * 12345 + packet.seq * 2654435761) % 100
        if h < self.rate:
            self.budget -= 1
            self.per_seq[packet.seq] = self.per_seq.get(packet.seq, 0) + 1
            return True
        return False


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.integers(min_value=5, max_value=45),
    size=st.integers(min_value=1, max_value=60),
    sack=st.booleans(),
)
def test_property_transfer_completes_under_data_loss(seed, rate, size, sack):
    sim = Simulator()
    pipe = Loopback(
        sim,
        total_segments=size,
        drop_data=BudgetedDropper(seed, rate),
        sack=sack,
    )
    pipe.run(until=600.0)
    assert pipe.sender.done, (seed, rate, size, sack)
    assert pipe.receiver.rcv_next == size


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.integers(min_value=5, max_value=40),
    size=st.integers(min_value=1, max_value=40),
)
def test_property_transfer_completes_under_ack_loss(seed, rate, size):
    sim = Simulator()
    pipe = Loopback(
        sim,
        total_segments=size,
        drop_ack=BudgetedDropper(seed, rate),
    )
    pipe.run(until=600.0)
    assert pipe.sender.done


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.integers(min_value=5, max_value=35),
    size=st.integers(min_value=1, max_value=40),
)
def test_property_transfer_completes_under_bidirectional_loss(seed, rate, size):
    sim = Simulator()
    pipe = Loopback(
        sim,
        total_segments=size,
        drop_data=BudgetedDropper(seed, rate),
        drop_ack=BudgetedDropper(seed + 1, rate),
    )
    pipe.run(until=900.0)
    assert pipe.sender.done


@pytest.mark.parametrize("sender_cls", [TahoeSender, CubicSender, SprSender])
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000),
       rate=st.integers(min_value=10, max_value=35))
def test_property_variants_complete_under_loss(sender_cls, seed, rate):
    sim = Simulator()
    pipe = Loopback(sim, total_segments=30,
                    drop_data=BudgetedDropper(seed, rate))
    old = pipe.sender
    pipe.sender = sender_cls(
        sim, 1, transmit=pipe._to_receiver,
        total_segments=old.total_segments, rto=old.rto,
    )
    pipe.run(until=600.0)
    assert pipe.sender.done


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.integers(min_value=5, max_value=45),
    size=st.integers(min_value=1, max_value=60),
)
def test_property_receiver_never_delivers_out_of_order(seed, rate, size):
    sim = Simulator()
    pipe = Loopback(sim, total_segments=size, drop_data=BudgetedDropper(seed, rate))
    pipe.run(until=600.0)
    # Delivery log (time, in_order_count) must be strictly increasing in
    # both coordinates.
    counts = [n for _, n in pipe.delivered]
    assert counts == sorted(counts)
    assert len(set(counts)) == len(counts)
