"""Unit tests for the RFC 6298 RTO estimator."""

import pytest

from repro.tcp.rto import RtoEstimator


def test_first_sample_initializes_srtt_rttvar():
    est = RtoEstimator(min_rto=0.1)
    est.sample(0.4)
    assert est.srtt == pytest.approx(0.4)
    assert est.rttvar == pytest.approx(0.2)
    assert est.rto == pytest.approx(0.4 + 4 * 0.2)


def test_subsequent_samples_use_ewma():
    est = RtoEstimator(min_rto=0.01)
    est.sample(1.0)
    est.sample(1.0)
    # |SRTT - R| = 0 so RTTVAR shrinks by 3/4 each steady sample.
    assert est.rttvar == pytest.approx(0.5 * 0.75)
    assert est.srtt == pytest.approx(1.0)


def test_rto_clamped_to_min():
    est = RtoEstimator(min_rto=1.0)
    for _ in range(50):
        est.sample(0.01)
    assert est.rto == 1.0


def test_rto_clamped_to_max():
    est = RtoEstimator(min_rto=1.0, max_rto=60.0)
    est.sample(30.0)
    for _ in range(10):
        est.backoff()
    assert est.rto == 60.0


def test_backoff_doubles():
    est = RtoEstimator(min_rto=1.0, max_rto=1000.0)
    est.sample(1.0)
    base = est.rto
    est.backoff()
    assert est.rto == pytest.approx(2 * base)
    est.backoff()
    assert est.rto == pytest.approx(4 * base)


def test_new_sample_collapses_backoff():
    est = RtoEstimator(min_rto=0.1)
    est.sample(1.0)
    est.backoff()
    est.backoff()
    assert est.backoff_exponent == 2
    est.sample(1.0)
    assert est.backoff_exponent == 0


def test_reset_backoff():
    est = RtoEstimator()
    est.backoff()
    est.reset_backoff()
    assert est.backoff_exponent == 0


def test_backoff_exponent_capped():
    est = RtoEstimator(max_backoff=3)
    for _ in range(10):
        est.backoff()
    assert est.backoff_exponent == 3


def test_initial_rto_is_one_second_default():
    est = RtoEstimator(min_rto=0.2)
    # RFC 6298: before any sample the RTO is 1 second.
    assert est.rto == pytest.approx(1.0)


def test_negative_sample_rejected():
    est = RtoEstimator()
    with pytest.raises(ValueError):
        est.sample(-1.0)


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        RtoEstimator(min_rto=2.0, max_rto=1.0)
    with pytest.raises(ValueError):
        RtoEstimator(min_rto=0.0)
