"""RTO exponential backoff vs the Markov model's timeout ladder.

The estimator-level tests pin the ladder geometry in isolation: the
exponent climbs by exactly 1 per timeout, is capped at ``max_backoff``,
and collapses on a fresh sample.  The scenario-level tests then run two
competing flows through a timeout-heavy small-packet bottleneck and
check the *simulated* timeout-state transitions against what the
paper's Markov models (:mod:`repro.model.partial` / ``full``) encode:

- stage ``k`` means a ``2^k``-scaled timer (doubling per repetitive
  timeout, the ``W2 -> W3 -> ...`` ladder of the full model);
- a repetitive timeout moves exactly one stage up;
- forward progress (a fresh RTT sample) collapses to stage 0, so the
  only way back into the ladder is through stage 1 — there are no
  skips in either direction;
- the inter-timeout silence is at least the backed-off timer, which is
  the "expected idle epochs" the ``b*`` aggregate charges.
"""

import pytest

from repro.build import ScenarioSpec, build_simulation
from repro.tcp.rto import RtoEstimator


# ---------------------------------------------------------------------------
# Estimator-level ladder geometry


def test_backoff_exponent_caps_at_max_backoff():
    est = RtoEstimator(min_rto=0.5, max_rto=1e9, max_backoff=5)
    est.sample(1.0)
    for _ in range(40):
        est.backoff()
    assert est.backoff_exponent == 5
    assert est.rto == est.base_rto * 2**5


def test_backoff_ladder_doubles_stage_by_stage():
    est = RtoEstimator(min_rto=0.1, max_rto=1e9, max_backoff=16)
    est.sample(1.0)
    ladder = []
    for _ in range(8):
        ladder.append(est.rto)
        est.backoff()
    for lower, upper in zip(ladder, ladder[1:]):
        assert upper == pytest.approx(2.0 * lower)


def test_backoff_resets_on_new_sample_then_reclimbs_from_one():
    est = RtoEstimator(min_rto=0.1, max_rto=1e9)
    est.sample(1.0)
    for _ in range(4):
        est.backoff()
    assert est.backoff_exponent == 4
    est.sample(1.0)  # forward progress: fresh RTT measurement
    assert est.backoff_exponent == 0
    est.backoff()
    assert est.backoff_exponent == 1  # re-enters the ladder at stage 1


def test_rto_stays_clamped_throughout_the_ladder():
    est = RtoEstimator(min_rto=1.0, max_rto=8.0)
    est.sample(0.01)  # base well below min_rto
    for _ in range(20):
        assert 1.0 <= est.rto <= 8.0
        est.backoff()
    assert est.rto == 8.0


# ---------------------------------------------------------------------------
# Scenario-level agreement on a 2-flow bottleneck


class RecordingProbe:
    """Minimal ``repro.obs``-compatible probe keeping rto events."""

    def __init__(self):
        self.events = []

    def emit(self, kind, time, flow_id=-1, **fields):
        if kind == "rto":
            self.events.append((flow_id, time, fields["backoff"], fields["rto"]))


@pytest.fixture(scope="module")
def rto_trace():
    # Two bulk flows through a bottleneck deep in the small packet
    # regime (≈1 packet per RTT per flow): § 3's repetitive-timeout
    # territory, where the b* ladder actually gets exercised.
    spec = ScenarioSpec.from_document({
        "name": "rto-ladder",
        "seed": 11,
        "duration": 120.0,
        "topology": {"type": "dumbbell", "capacity_bps": 40_000, "rtt": 0.2},
        "queue": {"kind": "droptail"},
        "workloads": [{"type": "bulk", "n_flows": 2}],
        "metrics": {"slice_seconds": 30.0},
    })
    built = build_simulation(spec)
    probe = RecordingProbe()
    flows = built.all_flows()
    assert len(flows) == 2
    for flow in flows:
        flow.sender.probe = probe
    built.run()
    return built, probe.events


def per_flow(events):
    by_flow = {}
    for flow_id, time, backoff, rto in events:
        by_flow.setdefault(flow_id, []).append((time, backoff, rto))
    return by_flow


def test_scenario_produces_repetitive_timeouts(rto_trace):
    built, events = rto_trace
    assert len(events) >= 10  # the bottleneck really is timeout-heavy
    assert any(backoff >= 2 for _, _, backoff, _ in events)
    for flow in built.all_flows():
        assert flow.sender.stats.timeouts == sum(
            1 for fid, _, _, _ in events if fid == flow.flow_id
        )


def test_stage_transitions_match_the_model_alphabet(rto_trace):
    built, events = rto_trace
    # The probe fires after backoff() is applied, so event k at stage
    # b_k means the flow just moved INTO stage b_k.  The model's legal
    # moves: one stage up (repetitive timeout, W_k -> W_{k+1}) or a
    # collapse to stage 1 through fresh-sample reset (b* exit -> later
    # re-entry).  Anything else — skipping stages, partial collapse —
    # is not in the chain.
    for trace in per_flow(events).values():
        assert trace[0][1] == 1  # first timeout enters the ladder at stage 1
        for (_, prev, _), (_, cur, _) in zip(trace, trace[1:]):
            assert cur == prev + 1 or cur == 1, (prev, cur)


def test_backoff_capped_in_scenario(rto_trace):
    built, events = rto_trace
    for flow in built.all_flows():
        cap = flow.sender.rto.max_backoff
        assert all(
            backoff <= cap for fid, _, backoff, _ in events if fid == flow.flow_id
        )
        assert flow.sender.stats.max_backoff_seen <= cap


def test_timer_doubles_between_repetitive_timeouts(rto_trace):
    built, events = rto_trace
    senders = {flow.flow_id: flow.sender for flow in built.all_flows()}
    for flow_id, trace in per_flow(events).items():
        est = senders[flow_id].rto
        for (_, prev_b, prev_rto), (_, cur_b, cur_rto) in zip(trace, trace[1:]):
            if cur_b != prev_b + 1:
                continue  # ladder re-entry: base was resampled
            # Stage k+1's timer is double stage k's, except where the
            # clamps flatten the ladder (exactly the T0·2^k geometry of
            # the model's backoff stages).
            if prev_rto > est.min_rto and cur_rto < est.max_rto:
                assert cur_rto == pytest.approx(2.0 * prev_rto)
            assert est.min_rto <= cur_rto <= est.max_rto


def test_inter_timeout_silence_at_least_the_backed_off_timer(rto_trace):
    built, events = rto_trace
    # Between consecutive *repetitive* timeouts of one flow, at least
    # the timer armed at the first of them must elapse (ACK activity
    # without a fresh sample restarts the same timer, only pushing the
    # second timeout later; a fresh sample instead collapses the ladder
    # and shows up as a stage-1 re-entry, excluded here).  This is the
    # idle time the b* state charges: T0 * 2^k per stage occupied.
    for trace in per_flow(events).values():
        for (t0, prev_b, rto0), (t1, cur_b, _) in zip(trace, trace[1:]):
            if cur_b == prev_b + 1:
                assert t1 - t0 >= rto0 - 1e-9
