"""Unit and behaviour tests for the TCP sender over a lossy loopback."""

import pytest

from repro.net.packet import DATA, SYN
from repro.sim.simulator import Simulator

from tests.tcp.helpers import Loopback


def data_packets(pipe):
    return [p for p in pipe.data_log if p.kind == DATA]


def test_lossless_transfer_completes():
    sim = Simulator()
    pipe = Loopback(sim, total_segments=30)
    pipe.run()
    assert pipe.sender.done
    assert pipe.receiver.rcv_next == 30
    assert pipe.sender.stats.retransmits == 0
    assert pipe.sender.stats.timeouts == 0


def test_handshake_before_data():
    sim = Simulator()
    pipe = Loopback(sim, total_segments=2)
    pipe.run()
    assert pipe.data_log[0].kind == SYN
    assert data_packets(pipe)[0].seq == 0


def test_initial_window_limits_first_burst():
    sim = Simulator()
    pipe = Loopback(sim, one_way_delay=1.0, total_segments=100, initial_cwnd=2)
    pipe.sender.open()
    sim.run(until=2.5)  # SYN+SYNACK take 2.0s; first burst goes out at 2.0
    assert len(data_packets(pipe)) == 2


def test_slow_start_doubles_window_per_rtt():
    sim = Simulator()
    pipe = Loopback(sim, one_way_delay=0.5, total_segments=1000, initial_cwnd=2)
    pipe.sender.open()
    sim.run(until=1.1)   # handshake done at t=1.0; initial burst out
    burst1 = len(data_packets(pipe))
    sim.run(until=2.1)   # ACKs at t=2.0 grow the window exponentially
    burst2 = len(data_packets(pipe)) - burst1
    assert burst1 == 2
    assert burst2 == 4  # cwnd 2 -> 4: two new segments per ACK


def test_single_loss_recovers_by_fast_retransmit_at_large_window():
    sim = Simulator()
    state = {"dropped": False}

    def drop_one(p):
        if p.kind == DATA and p.seq == 10 and not p.is_retransmit and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    pipe = Loopback(sim, total_segments=60, drop_data=drop_one, initial_cwnd=8)
    pipe.run()
    assert pipe.sender.done
    assert pipe.sender.stats.fast_retransmits == 1
    assert pipe.sender.stats.timeouts == 0


def test_loss_at_tiny_window_forces_timeout():
    sim = Simulator()
    state = {"dropped": False}

    def drop_one(p):
        if p.kind == DATA and p.seq == 0 and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    # cwnd=1: no dupACKs possible -> the paper's small-window pathology.
    pipe = Loopback(sim, total_segments=5, drop_data=drop_one, initial_cwnd=1)
    pipe.run()
    assert pipe.sender.done
    assert pipe.sender.stats.fast_retransmits == 0
    assert pipe.sender.stats.timeouts >= 1


def test_timeout_halves_ssthresh_and_resets_cwnd():
    sim = Simulator()

    def blackhole_after_4(p):
        return p.kind == DATA and p.seq >= 4

    pipe = Loopback(sim, total_segments=12, drop_data=blackhole_after_4, initial_cwnd=8)
    pipe.sender.open()
    sim.run(until=5.0)
    # The flow is stuck in timeout: cwnd collapsed to 1, ssthresh halved.
    assert pipe.sender.stats.timeouts >= 1
    assert pipe.sender.cwnd == 1.0
    assert pipe.sender.ssthresh >= 2.0


def test_repetitive_timeout_doubles_backoff():
    sim = Simulator()
    # Drop every transmission of segment 0 a few times, including retransmits.
    state = {"count": 0}

    def drop_seq0(p):
        if p.kind == DATA and p.seq == 0 and state["count"] < 3:
            state["count"] += 1
            return True
        return False

    pipe = Loopback(sim, total_segments=3, drop_data=drop_seq0)
    pipe.run()
    assert pipe.sender.done
    assert pipe.sender.stats.timeouts >= 3
    assert pipe.sender.stats.repetitive_timeouts >= 2
    assert pipe.sender.stats.max_backoff_seen >= 2


def test_backoff_collapses_after_progress():
    sim = Simulator()
    state = {"count": 0}

    def drop_seq0(p):
        if p.kind == DATA and p.seq == 0 and state["count"] < 2:
            state["count"] += 1
            return True
        return False

    pipe = Loopback(sim, total_segments=10, drop_data=drop_seq0)
    pipe.run()
    assert pipe.sender.done
    assert pipe.sender.rto.backoff_exponent == 0


def test_syn_loss_retried():
    sim = Simulator()
    state = {"count": 0}

    def drop_syn(p):
        if p.kind == SYN and state["count"] < 2:
            state["count"] += 1
            return True
        return False

    pipe = Loopback(sim, total_segments=2, drop_data=drop_syn)
    pipe.run(until=30.0)
    assert pipe.sender.done
    assert pipe.sender.stats.syn_retries == 2


def test_syn_gives_up_after_max_retries():
    sim = Simulator()
    pipe = Loopback(sim, total_segments=2, drop_data=lambda p: p.kind == SYN)
    pipe.run(until=300.0)
    assert pipe.sender.state == "failed"


def test_zero_length_flow_completes_on_handshake():
    sim = Simulator()
    pipe = Loopback(sim, total_segments=0)
    pipe.run(until=5.0)
    assert pipe.sender.done


def test_karn_no_rtt_sample_from_retransmits():
    sim = Simulator()
    state = {"dropped": False}

    def drop_one(p):
        if p.kind == DATA and p.seq == 0 and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    pipe = Loopback(sim, one_way_delay=0.05, total_segments=1, drop_data=drop_one)
    pipe.sender.open()
    sim.run(until=0.15)
    srtt_before = pipe.sender.rto.srtt  # from the handshake only
    sim.run(until=5.0)
    # Segment 0 was retransmitted; its ACK must not feed the estimator.
    assert pipe.sender.rto.srtt == pytest.approx(srtt_before)
    assert pipe.sender.done


def test_unbounded_flow_keeps_sending():
    sim = Simulator()
    pipe = Loopback(sim, total_segments=None)
    pipe.run(until=5.0)
    assert not pipe.sender.done
    assert pipe.sender.stats.data_sent > 50


def test_completion_callback_fires_once():
    sim = Simulator()
    calls = []
    pipe = Loopback(sim, total_segments=3, on_complete=calls.append)
    pipe.run()
    assert len(calls) == 1


def test_cwnd_capped_by_max_cwnd():
    sim = Simulator()
    pipe = Loopback(sim, total_segments=None, max_cwnd=6)
    pipe.run(until=20.0)
    assert pipe.sender.cwnd <= 6.0


def test_sack_transfer_with_multiple_losses_completes():
    sim = Simulator()
    dropped = set()

    def drop_two(p):
        if p.kind == DATA and not p.is_retransmit and p.seq in (10, 14) and p.seq not in dropped:
            dropped.add(p.seq)
            return True
        return False

    pipe = Loopback(sim, total_segments=60, drop_data=drop_two, sack=True, initial_cwnd=10)
    pipe.run()
    assert pipe.sender.done
    assert pipe.receiver.rcv_next == 60


def test_sack_avoids_resending_buffered_segments():
    sim = Simulator()
    state = {"dropped": False}

    def drop_one(p):
        if p.kind == DATA and p.seq == 10 and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    pipe = Loopback(sim, total_segments=40, drop_data=drop_one, sack=True, initial_cwnd=10)
    pipe.run()
    assert pipe.sender.done
    sent_seqs = [p.seq for p in data_packets(pipe)]
    # Only the lost segment should appear more than once.
    repeats = {s for s in sent_seqs if sent_seqs.count(s) > 1}
    assert repeats <= {10}


def test_ack_loss_tolerated_by_cumulative_acks():
    sim = Simulator()
    counter = {"n": 0}

    def drop_every_third_ack(p):
        counter["n"] += 1
        return counter["n"] % 3 == 0

    pipe = Loopback(sim, total_segments=40, drop_ack=drop_every_third_ack)
    pipe.run(until=120.0)
    assert pipe.sender.done
