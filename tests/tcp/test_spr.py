"""Unit tests for SPR-TCP (the future-work end-host mechanism)."""

from repro.net.packet import DATA
from repro.sim.simulator import Simulator
from repro.tcp.spr import SprSender

from tests.tcp.helpers import Loopback


def make_pipe(sim, **kwargs):
    pipe = Loopback(sim, **kwargs)
    old = pipe.sender
    pipe.sender = SprSender(
        sim,
        1,
        transmit=pipe._to_receiver,
        total_segments=old.total_segments,
        initial_cwnd=old.initial_cwnd,
        rto=old.rto,
    )
    return pipe


def test_lossless_flow_never_enters_spr_mode():
    sim = Simulator()
    pipe = make_pipe(sim, total_segments=50)
    pipe.run()
    assert pipe.sender.done
    assert not pipe.sender.spr_mode
    assert pipe.sender.spr_entries == 0


def test_consecutive_timeouts_engage_spr_mode():
    sim = Simulator()
    state = {"count": 0}

    def drop_first_sends(p):
        if p.kind == DATA and state["count"] < 3:
            state["count"] += 1
            return True
        return False

    pipe = make_pipe(sim, total_segments=30, drop_data=drop_first_sends,
                     initial_cwnd=1)
    pipe.sender.open()
    sim.run(until=10.0)
    assert pipe.sender.spr_entries >= 1
    sim.run(until=120.0)
    assert pipe.sender.done


def test_spr_mode_caps_backoff():
    sim = Simulator()
    pipe = make_pipe(sim, total_segments=5,
                     drop_data=lambda p: p.kind == DATA)  # black hole
    pipe.sender.open()
    sim.run(until=60.0)
    assert pipe.sender.spr_mode
    assert pipe.sender.rto.backoff_exponent <= SprSender.SPR_BACKOFF_CAP
    # The flow keeps retrying at a bounded pace instead of going silent
    # for exponentially-growing periods.
    assert pipe.sender.stats.timeouts > 10


def test_spr_mode_exits_when_window_regrows():
    sim = Simulator()
    state = {"count": 0}

    def drop_early(p):
        if p.kind == DATA and state["count"] < 3:
            state["count"] += 1
            return True
        return False

    pipe = make_pipe(sim, total_segments=200, drop_data=drop_early, initial_cwnd=1)
    pipe.run(until=200.0)
    assert pipe.sender.done
    assert pipe.sender.spr_entries >= 1
    assert not pipe.sender.spr_mode          # recovered
    assert pipe.sender.rto.max_backoff == pipe.sender._normal_backoff_cap


def test_spr_pacing_spreads_transmissions():
    sim = Simulator()
    state = {"count": 0}

    def drop_early(p):
        if p.kind == DATA and state["count"] < 3:
            state["count"] += 1
            return True
        return False

    pipe = make_pipe(sim, total_segments=None, drop_data=drop_early, initial_cwnd=1)
    pipe.sender.open()
    sim.run(until=5.0)
    if pipe.sender.spr_mode:
        # While paced, at most SPR_WINDOW_CAP outstanding.
        assert pipe.sender._pipe() <= SprSender.SPR_WINDOW_CAP


def test_spr_registered_as_variant():
    from repro.net.topology import Dumbbell
    from repro.tcp.flow import TcpFlow

    sim = Simulator()
    bell = Dumbbell(sim, 1_000_000, 0.1)
    flow = TcpFlow(bell, 1, size_segments=20, variant="spr")
    assert isinstance(flow.sender, SprSender)
    sim.run(until=30.0)
    assert flow.done
