"""Unit tests for the TFRC implementation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import ACK, DATA, Packet
from repro.net.topology import Dumbbell
from repro.sim.simulator import Simulator
from repro.tcp.tfrc import (
    LossHistory,
    TfrcFlow,
    TfrcReceiver,
    TfrcSender,
    tfrc_throughput,
)


# ------------------------------------------------------------- equation
def test_throughput_equation_matches_simple_form_at_small_p():
    # For small p the equation approaches s / (R sqrt(2p/3)) — the
    # "TCP-friendly rate" of the paper's introduction.
    s, rtt, p = 500, 0.2, 0.001
    simple = s / (rtt * math.sqrt(2 * p / 3))
    assert tfrc_throughput(s, rtt, p) == pytest.approx(simple, rel=0.1)


def test_throughput_equation_decreases_with_p():
    rates = [tfrc_throughput(500, 0.2, p) for p in (0.01, 0.05, 0.1, 0.3)]
    assert rates == sorted(rates, reverse=True)


def test_throughput_infinite_without_loss():
    assert tfrc_throughput(500, 0.2, 0.0) == float("inf")


def test_throughput_validates_rtt():
    with pytest.raises(ValueError):
        tfrc_throughput(500, 0.0, 0.1)


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=1e-4, max_value=0.5))
def test_property_friendly_rate_exceeds_one_packet_per_rtt(p):
    # The paper's observation: sqrt(3/2)/(RTT sqrt(p)) >= sqrt(3/2)
    # packets per RTT for any p < 1 — the assumption the regime breaks.
    simple_rate_pkts_per_rtt = math.sqrt(3.0 / 2.0) / math.sqrt(p)
    assert simple_rate_pkts_per_rtt >= math.sqrt(3.0 / 2.0)


# ---------------------------------------------------------- loss history
def test_loss_history_single_event_rate():
    history = LossHistory()
    for _ in range(99):
        history.packet_received()
    history.loss_event(1.0, rtt=0.2)
    assert history.loss_event_rate() == pytest.approx(1 / 99)


def test_losses_within_rtt_coalesce():
    history = LossHistory()
    for _ in range(50):
        history.packet_received()
    assert history.loss_event(1.0, rtt=0.2)
    assert not history.loss_event(1.1, rtt=0.2)   # same event
    assert history.loss_event(1.5, rtt=0.2)       # new event


def test_no_events_means_zero_rate():
    history = LossHistory()
    history.packet_received()
    assert history.loss_event_rate() == 0.0


def test_weighted_average_uses_recent_intervals_more():
    history = LossHistory()
    # Two eras: long intervals first, then short ones.
    for interval in (100, 100, 100, 100, 5, 5, 5, 5):
        for _ in range(interval):
            history.packet_received()
        history.last_event_time = None  # force distinct events
        history.loss_event(0.0, rtt=0.1)
    # Recent short intervals dominate: rate well above 1/100.
    assert history.loss_event_rate() > 1 / 50


# ------------------------------------------------------------- receiver
def test_receiver_detects_gap_and_sends_feedback():
    sim = Simulator()
    sent = []
    receiver = TfrcReceiver(sim, 1, send=sent.append, rtt_hint=0.1)
    for seq in (0, 1, 3):  # gap at 2
        pkt = Packet(1, DATA, seq=seq, size=500)
        pkt.sent_at = sim.now
        receiver.receive(pkt, sim.now)
    sim.run(until=1.0)
    assert len(sent) >= 1
    feedback = sent[0]
    assert feedback.fb_loss_rate > 0
    assert feedback.fb_recv_rate > 0
    assert feedback.ack_seq == 4


def test_receiver_feedback_paced_once_per_rtt():
    sim = Simulator()
    sent = []
    receiver = TfrcReceiver(sim, 1, send=sent.append, rtt_hint=0.5)

    def pump():
        pkt = Packet(1, DATA, seq=pump.seq, size=500)
        pkt.sent_at = sim.now
        receiver.receive(pkt, sim.now)
        pump.seq += 1
        if sim.now < 2.0:
            sim.schedule(0.01, pump)

    pump.seq = 0
    sim.schedule(0.0, pump)
    sim.run(until=2.5)
    assert 3 <= len(sent) <= 6  # ~one per 0.5 s


# --------------------------------------------------------------- sender
def test_sender_paces_at_configured_rate():
    sim = Simulator()
    out = []
    sender = TfrcSender(sim, 1, transmit=out.append, mss=500, rtt_hint=0.1)
    sender.rate_bytes = 5000.0  # 10 packets/s
    sender.open()
    sender._no_feedback_timer.cancel()  # isolate pure pacing
    sim.run(until=1.0)
    assert 8 <= len(out) <= 12


def test_sender_slows_down_on_reported_loss():
    sim = Simulator()
    sender = TfrcSender(sim, 1, transmit=lambda p: None, mss=500, rtt_hint=0.2)
    sender.open()
    sender.rate_bytes = 100_000.0
    feedback = Packet(1, ACK, ack_seq=10)
    feedback.fb_loss_rate = 0.2
    feedback.fb_recv_rate = 50_000.0
    feedback.fb_echo = None
    sender.receive(feedback, 1.0)
    assert sender.rate_bytes < 100_000.0
    assert sender.rate_bytes == pytest.approx(
        tfrc_throughput(500, sender.rtt, 0.2), rel=1e-6
    )


def test_sender_slow_starts_without_loss():
    sim = Simulator()
    sender = TfrcSender(sim, 1, transmit=lambda p: None, mss=500, rtt_hint=0.2)
    sender.open()
    before = sender.rate_bytes
    feedback = Packet(1, ACK, ack_seq=5)
    feedback.fb_loss_rate = 0.0
    feedback.fb_recv_rate = 1e9
    sender.receive(feedback, 0.5)
    assert sender.rate_bytes == pytest.approx(2 * before)


def test_sender_rtt_sample_from_echo():
    sim = Simulator()
    sender = TfrcSender(sim, 1, transmit=lambda p: None, rtt_hint=0.2)
    feedback = Packet(1, ACK, ack_seq=1)
    feedback.fb_loss_rate = 0.0
    feedback.fb_recv_rate = 1000.0
    feedback.fb_echo = 1.0
    sender.receive(feedback, 1.4)  # 0.4 s sample
    assert sender.rtt > 0.2


def test_no_feedback_timer_halves_rate():
    sim = Simulator()
    sender = TfrcSender(sim, 1, transmit=lambda p: None, mss=500, rtt_hint=0.1)
    sender.rate_bytes = 10_000.0
    sender.open()
    sim.run(until=1.0)  # several no-feedback periods elapse
    assert sender.rate_bytes < 10_000.0


def test_tfrc_flow_end_to_end_completes():
    sim = Simulator(seed=6)
    bell = Dumbbell(sim, 1_000_000, 0.1)
    flow = TfrcFlow(bell, 1, size_segments=50, start_time=0.0)
    sim.run(until=60.0)
    assert flow.done


def test_tfrc_contention_rates_stay_bounded():
    sim = Simulator(seed=6)
    bell = Dumbbell(sim, 200_000, 0.2)
    flows = [TfrcFlow(bell, i, size_segments=None, start_time=0.1 * i)
             for i in range(40)]
    sim.run(until=60.0)
    # Under 5 Kbps fair share TFRC must have throttled far below its
    # initial equation-free growth.
    for flow in flows:
        assert flow.sender.rate_bytes < 200_000 / 8
    assert bell.forward.stats.utilization(200_000, 60.0) > 0.7
