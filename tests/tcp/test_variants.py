"""Unit tests for the Tahoe and CUBIC senders."""

import pytest

from repro.sim.simulator import Simulator
from repro.tcp.variants import VARIANTS, CubicSender, TahoeSender

from tests.tcp.helpers import Loopback


class TahoeLoopback(Loopback):
    pass


def make_pipe(sim, sender_cls, **kwargs):
    """Build a loopback whose sender is *sender_cls*."""
    pipe = Loopback(sim, **kwargs)
    # Rebuild the sender with the variant class, rewiring the callbacks.
    old = pipe.sender
    pipe.sender = sender_cls(
        sim,
        1,
        transmit=pipe._to_receiver,
        total_segments=old.total_segments,
        initial_cwnd=old.initial_cwnd,
        rto=old.rto,
    )
    return pipe


def test_variant_registry_complete():
    assert set(VARIANTS) == {"newreno", "sack", "tahoe", "cubic", "spr"}
    sim = Simulator()
    for name, factory in VARIANTS.items():
        sender = factory(sim, 1, transmit=lambda p: None)
        assert sender.flow_id == 1


def test_tahoe_lossless_transfer_completes():
    sim = Simulator()
    pipe = make_pipe(sim, TahoeSender, total_segments=30)
    pipe.run()
    assert pipe.sender.done


def test_tahoe_collapses_window_on_dupacks():
    sim = Simulator()
    state = {"dropped": False}

    def drop_one(p):
        if p.kind == "data" and p.seq == 5 and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    pipe = make_pipe(sim, TahoeSender, total_segments=60, drop_data=drop_one,
                     initial_cwnd=10)
    pipe.sender.open()
    sim.run(until=0.35)  # past the dupACKs, before much regrowth
    assert pipe.sender.stats.fast_retransmits == 1
    assert pipe.sender.cwnd < 4.0  # collapsed, unlike NewReno's ssthresh+3
    sim.run(until=60.0)
    assert pipe.sender.done


def test_cubic_defaults_to_iw10():
    sim = Simulator()
    sender = CubicSender(sim, 1, transmit=lambda p: None)
    assert sender.initial_cwnd == 10.0


def test_cubic_lossless_transfer_completes():
    sim = Simulator()
    pipe = make_pipe(sim, CubicSender, total_segments=100)
    pipe.run()
    assert pipe.sender.done
    assert pipe.receiver.rcv_next == 100


def test_cubic_window_function_shape():
    sim = Simulator()
    sender = CubicSender(sim, 1, transmit=lambda p: None)
    sender._w_max = 20.0
    sender._epoch_start = 0.0
    k = ((20.0 * CubicSender.BETA) / CubicSender.C) ** (1.0 / 3.0)
    # At t = K the window equals W_max (the plateau).
    sim.now = k
    assert sender._cubic_window(sim.now) == pytest.approx(20.0)
    # Concave before the plateau, convex growth after.
    sim.now = k + 2.0
    after = sender._cubic_window(sim.now)
    assert after > 20.0


def test_cubic_reduction_records_wmax_and_restarts_epoch():
    sim = Simulator()
    state = {"dropped": False}

    def drop_one(p):
        if p.kind == "data" and p.seq == 20 and not state["dropped"]:
            state["dropped"] = True
            return True
        return False

    pipe = make_pipe(sim, CubicSender, total_segments=200, drop_data=drop_one)
    pipe.run(until=120.0)
    assert pipe.sender.done
    assert pipe.sender._epoch_start >= 0.0
    assert pipe.sender.stats.fast_retransmits + pipe.sender.stats.timeouts >= 1


def test_flow_variant_selection():
    from repro.net.topology import Dumbbell
    from repro.tcp.flow import TcpFlow

    sim = Simulator()
    bell = Dumbbell(sim, 1_000_000, 0.1)
    cubic = TcpFlow(bell, 1, size_segments=10, variant="cubic", initial_cwnd=None)
    assert isinstance(cubic.sender, CubicSender)
    assert cubic.variant == "cubic"
    sack = TcpFlow(bell, 2, size_segments=10, variant="sack")
    assert sack.sender.sack_enabled
    assert sack.receiver.sack_enabled
    with pytest.raises(ValueError):
        TcpFlow(bell, 3, size_segments=10, variant="vegas")


def test_all_variants_complete_over_dumbbell():
    from repro.net.topology import Dumbbell
    from repro.tcp.flow import TcpFlow

    sim = Simulator(seed=4)
    bell = Dumbbell(sim, 1_000_000, 0.1)
    flows = [
        TcpFlow(bell, i, size_segments=40, variant=v, start_time=0.2 * i,
                initial_cwnd=None)
        for i, v in enumerate(VARIANTS)
    ]
    sim.run(until=60.0)
    assert all(f.done for f in flows)
