"""Cross-module integration tests: full simulations at small scale.

These check the *system-level* claims the unit tests cannot: TCP over
the dumbbell behaves like TCP, the regime pathology appears under
DropTail, TAQ's machinery improves it, and the baselines behave as the
paper describes (RED/SFQ ~ DropTail in small packet regimes).
"""

import pytest

from repro.core import TAQQueue
from repro.experiments.runner import build_dumbbell
from repro.workloads import spawn_bulk_flows

CAPACITY = 400_000.0
RTT = 0.2
DURATION = 60.0


def run_population(kind, n_flows, duration=DURATION, seed=3, **flow_kwargs):
    bench = build_dumbbell(kind, CAPACITY, rtt=RTT, seed=seed, slice_seconds=10.0)
    flows = spawn_bulk_flows(bench.bell, n_flows, start_window=3.0,
                             extra_rtt_max=0.05, **flow_kwargs)
    bench.sim.run(until=duration)
    return bench, flows


def jain_of(bench, flows):
    return bench.collector.mean_short_term_jain([f.flow_id for f in flows])


def test_uncongested_short_transfers_see_no_losses():
    # Two 20-segment transfers never grow a window big enough to stress
    # the one-RTT buffer (long-running flows, by contrast, always probe
    # into loss — that is TCP working as designed).
    bench, flows = run_population("droptail", 2, size_segments=20)
    assert bench.queue.dropped == 0
    assert sum(f.sender.stats.timeouts for f in flows) == 0
    assert all(f.done for f in flows)


def test_congestion_produces_losses_and_timeouts():
    bench, flows = run_population("droptail", 80)
    assert bench.queue.loss_rate() > 0.05
    assert sum(f.sender.stats.timeouts for f in flows) > 50
    # and the regime classifier agrees this is pathological
    assert bench.bell.regime(80) == "sub-packet"


def test_utilization_high_under_contention():
    bench, _ = run_population("droptail", 80)
    assert bench.bell.forward.stats.utilization(CAPACITY, DURATION) > 0.9


def test_taq_beats_droptail_on_short_term_fairness():
    dt_bench, dt_flows = run_population("droptail", 80)
    taq_bench, taq_flows = run_population("taq", 80)
    assert jain_of(taq_bench, taq_flows) > jain_of(dt_bench, dt_flows)


def test_red_and_sfq_do_not_fix_the_regime():
    # §2.4: RED and SFQ offer similar aggregate behaviour to DropTail in
    # small packet regimes (no TAQ-like rescue).
    dt, dt_flows = run_population("droptail", 80)
    red, red_flows = run_population("red", 80)
    sfq, sfq_flows = run_population("sfq", 80)
    taq, taq_flows = run_population("taq", 80)
    taq_jfi = jain_of(taq, taq_flows)
    for bench, flows in ((red, red_flows), (sfq, sfq_flows)):
        assert jain_of(bench, flows) < taq_jfi
        assert bench.bell.forward.stats.utilization(CAPACITY, DURATION) > 0.85


def test_sack_population_also_breaks_down():
    bench, flows = run_population("droptail", 80, sack=True)
    assert sum(f.sender.stats.timeouts for f in flows) > 50


def test_taq_tracker_sees_all_flows():
    bench, flows = run_population("taq", 40)
    assert isinstance(bench.queue, TAQQueue)
    assert len(bench.queue.tracker.flows) == 40


def test_taq_epoch_estimates_converge_near_real_rtt():
    bench, flows = run_population("taq", 20)
    records = bench.queue.tracker.flows.values()
    estimates = [r.epoch_length for r in records if r.estimator.samples > 3]
    assert estimates, "no flow collected epoch samples"
    # Loaded RTT is base (0.2-0.25) plus queueing; the passive estimator
    # may overestimate when matched packets waited in low-priority
    # queues, but must stay within a small factor of reality.
    for estimate in estimates:
        assert 0.1 < estimate < 2.0


def test_deterministic_replay_same_seed():
    a_bench, a_flows = run_population("taq", 40, seed=5)
    b_bench, b_flows = run_population("taq", 40, seed=5)
    assert jain_of(a_bench, a_flows) == jain_of(b_bench, b_flows)
    assert a_bench.queue.dropped == b_bench.queue.dropped
    a_to = [f.sender.stats.timeouts for f in a_flows]
    b_to = [f.sender.stats.timeouts for f in b_flows]
    assert a_to == b_to


def test_different_seeds_differ():
    a_bench, a_flows = run_population("droptail", 40, seed=5)
    b_bench, b_flows = run_population("droptail", 40, seed=6)
    assert [f.sender.stats.timeouts for f in a_flows] != [
        f.sender.stats.timeouts for f in b_flows
    ]


def test_sized_flows_complete_and_report_download_time():
    bench, flows = run_population("droptail", 20, size_segments=30, duration=90.0)
    finished = [f for f in flows if f.done]
    assert len(finished) == 20
    for flow in finished:
        assert flow.download_time is not None and flow.download_time > 0


def test_goodput_conservation():
    # Bytes delivered at the bottleneck equal the collector's accounting.
    bench, flows = run_population("droptail", 30)
    collected = 0
    for index in bench.collector.slice_indices():
        goodputs = bench.collector.slice_goodputs(index, [f.flow_id for f in flows])
        collected += sum(goodputs) * bench.collector.slice_seconds / 8.0
    data_bytes = sum(
        per_flow_bytes
        for per_flow in bench.collector._slices.values()
        for per_flow_bytes in per_flow.values()
    )
    assert collected == pytest.approx(data_bytes)
    assert data_bytes <= bench.bell.forward.stats.bytes_delivered


def test_round_log_counts_match_sender_stats():
    bench, flows = run_population("droptail", 30, round_log=True)
    for flow in flows:
        stats = flow.sender.stats
        logged = sum(sent for _, _, sent in flow.sender.round_log.rounds)
        total_sent = stats.data_sent + stats.retransmits
        # Every transmission is in some round; the currently-open round
        # may not be closed yet.
        assert logged <= total_sent
        assert logged >= total_sent - flow.sender._round_sent - 1
