"""Public-API hygiene: __all__ is accurate and imports are clean.

A downstream user's first contact is ``from repro import ...`` and the
subpackage façades; every name advertised in an ``__all__`` must exist,
and the headline classes must be importable from the documented paths.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.tcp",
    "repro.queues",
    "repro.model",
    "repro.core",
    "repro.metrics",
    "repro.workloads",
    "repro.testbed",
    "repro.overlay",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} has no __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} advertised but missing"


def test_headline_imports():
    from repro import Dumbbell, Simulator, TcpFlow  # noqa: F401
    from repro.core import AdmissionController, TAQQueue, taq_report  # noqa: F401
    from repro.model import build_partial_model, find_tipping_point  # noqa: F401
    from repro.overlay import ArqTunnel, OverlayDumbbell  # noqa: F401
    from repro.tcp.spr import SprSender  # noqa: F401
    from repro.tcp.tfrc import TfrcFlow  # noqa: F401


def test_version_is_set():
    import repro

    assert repro.__version__


def test_experiment_modules_expose_config_and_run():
    from repro.experiments.cli import EXPERIMENTS

    for key, (module_name, _description) in EXPERIMENTS.items():
        module = importlib.import_module(module_name)
        assert hasattr(module, "Config"), key
        assert hasattr(module, "run"), key
        assert hasattr(module.Config, "paper"), key


def test_queue_disciplines_share_interface():
    import random

    from repro.core import TAQQueue
    from repro.queues import DropTailQueue, REDQueue, SFQQueue

    instances = [
        DropTailQueue(10),
        REDQueue(10, random.Random(1)),
        SFQQueue(10),
        TAQQueue(10),
    ]
    for queue in instances:
        assert callable(queue.enqueue)
        assert callable(queue.dequeue)
        assert len(queue) == 0
        assert queue.loss_rate() == 0.0
