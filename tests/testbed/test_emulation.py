"""Tests for the testbed emulation harness."""

import pytest

from repro.core import TAQQueue
from repro.metrics import SliceGoodputCollector
from repro.net.packet import DATA, Packet
from repro.queues.droptail import DropTailQueue
from repro.sim.simulator import Simulator
from repro.testbed import JitteredLink, TestbedDumbbell, clock_quantizer
from repro.workloads import spawn_bulk_flows


class Sink:
    def __init__(self):
        self.arrivals = []

    def receive(self, packet, now):
        self.arrivals.append((now, packet))


def test_clock_quantizer():
    q = clock_quantizer(1e-3)
    assert q(0.0123456) == pytest.approx(0.012)
    with pytest.raises(ValueError):
        clock_quantizer(0.0)


def test_jittered_link_adds_bounded_noise():
    import random

    sim = Simulator()
    sink = Sink()
    link = JitteredLink(
        sim, 8_000_000.0, 0.01, DropTailQueue(10), random.Random(1),
        processing_range=(1e-4, 5e-4), jitter_mean=1e-4,
    )
    p = Packet(1, DATA, seq=0, size=1000)
    p.dst = sink
    link.send(p)
    sim.run()
    arrival = sink.arrivals[0][0]
    deterministic = 1000 * 8 / 8_000_000.0 + 0.01
    assert arrival > deterministic
    assert arrival < deterministic + 0.01  # noise stays small


def test_jitter_is_deterministic_per_seed():
    def one_run(seed):
        sim = Simulator(seed=seed)
        sink = Sink()
        link = JitteredLink(
            sim, 8_000_000.0, 0.01, DropTailQueue(10),
            sim.rng.stream("j"),
        )
        for i in range(5):
            p = Packet(1, DATA, seq=i, size=500)
            p.dst = sink
            link.send(p)
        sim.run()
        return [t for t, _ in sink.arrivals]

    assert one_run(3) == one_run(3)
    assert one_run(3) != one_run(4)


def test_chained_lan_hop_reaches_receiver():
    sim = Simulator(seed=1)
    bed = TestbedDumbbell(sim, 1_000_000, rtt=0.05)
    flows = spawn_bulk_flows(bed, 3, size_segments=20, start_window=0.5)
    sim.run(until=20.0)
    assert all(f.done for f in flows)
    assert bed.lan.stats.delivered > 0
    assert bed.forward.stats.delivered > 0


def test_testbed_runs_unmodified_taq():
    sim = Simulator(seed=1)
    taq = TAQQueue.for_link(600_000, rtt=0.05)
    bed = TestbedDumbbell(sim, 600_000, rtt=0.05, queue=taq)
    taq.install_reverse_tap(bed.reverse)
    col = SliceGoodputCollector(5.0)
    bed.forward.add_delivery_tap(col.observe)
    flows = spawn_bulk_flows(bed, 20, size_segments=None, start_window=1.0)
    sim.run(until=30.0)
    assert len(taq.tracker.flows) > 0
    assert col.mean_short_term_jain([f.flow_id for f in flows]) > 0.5


def test_testbed_fair_share_helpers():
    sim = Simulator()
    bed = TestbedDumbbell(sim, 1_000_000, rtt=0.2)
    assert bed.fair_share_bps(50) == pytest.approx(20_000)
    assert bed.packets_per_rtt(50) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        bed.fair_share_bps(0)
