"""Tests for Squid access-log reading/writing."""

import io

import pytest

from repro.workloads import generate_trace, read_trace, write_trace
from repro.workloads.logfmt import (
    LogParseError,
    parse_line,
    read_trace_file,
    write_trace_file,
)

SAMPLE = """\
1000000000.123    250 192.168.1.10 TCP_MISS/200 15000 GET http://a.example/x - DIRECT/a.example text/html
1000000001.000    100 192.168.1.11 TCP_HIT/200 4000 GET http://b.example/y - NONE/- image/png
1000000002.500    900 192.168.1.10 TCP_MISS/200 98000 GET http://c.example/z - DIRECT/c.example text/css

# a comment line
1000000003.000     50 192.168.1.12 TCP_MISS/404 0 GET http://d.example/q - DIRECT/d.example text/html
"""


def test_parse_line_fields():
    time, client, size, code = parse_line(SAMPLE.splitlines()[0])
    assert time == pytest.approx(1000000000.123)
    assert client == "192.168.1.10"
    assert size == 15000
    assert code == "TCP_MISS"


def test_parse_line_skips_blank_and_comments():
    assert parse_line("") is None
    assert parse_line("   ") is None
    assert parse_line("# hello") is None


def test_parse_line_rejects_garbage():
    with pytest.raises(LogParseError):
        parse_line("only three fields here")
    with pytest.raises(LogParseError):
        parse_line("notatime 250 c TCP_MISS/200 100 GET url - peer type")


def test_read_trace_skips_cache_hits_and_empty_objects():
    trace = read_trace(SAMPLE.splitlines())
    # The TCP_HIT and the 0-byte entries are skipped.
    assert len(trace.requests) == 2
    assert trace.n_clients == 1  # both remaining requests are 192.168.1.10
    sizes = [r.size_bytes for r in trace.requests]
    assert sizes == [15000, 98000]


def test_read_trace_rebases_time():
    trace = read_trace(SAMPLE.splitlines())
    assert trace.requests[0].time == 0.0
    assert trace.requests[1].time == pytest.approx(2.377)


def test_read_trace_keeps_hits_when_asked():
    trace = read_trace(SAMPLE.splitlines(), skip_cache_hits=False)
    assert len(trace.requests) == 3
    assert trace.n_clients == 2


def test_empty_log():
    trace = read_trace([])
    assert trace.requests == []
    assert trace.n_clients == 0


def test_round_trip_preserves_requests():
    original = generate_trace(seed=5, n_clients=6, duration=50.0,
                              requests_per_client_per_sec=0.2)
    buffer = io.StringIO()
    written = write_trace(original, buffer)
    assert written == len(original.requests)
    buffer.seek(0)
    recovered = read_trace(buffer)
    assert len(recovered.requests) == len(original.requests)
    assert [r.size_bytes for r in recovered.requests] == [
        r.size_bytes for r in original.requests
    ]
    # Times survive to log precision (ms), modulo the reader's rebasing
    # to the first request.
    base = original.requests[0].time
    for a, b in zip(recovered.requests, original.requests):
        assert a.time == pytest.approx(b.time - base, abs=0.002)


def test_file_round_trip(tmp_path):
    trace = generate_trace(seed=2, n_clients=3, duration=20.0,
                           requests_per_client_per_sec=0.3)
    path = tmp_path / "access.log"
    write_trace_file(trace, str(path))
    recovered = read_trace_file(str(path))
    assert len(recovered.requests) == len(trace.requests)
    assert recovered.n_clients == trace.n_clients
