"""Tests for the §4.3 informed-wait client."""

import itertools

from repro.core import AdmissionController, TAQQueue
from repro.net.topology import Dumbbell
from repro.sim.simulator import Simulator
from repro.workloads.web import WebUser


def make_congested_controller(t_wait=3.0):
    ctrl = AdmissionController(t_wait=t_wait)
    for t in (0.0, ctrl.measure_interval + 0.1):
        for i in range(200):
            ctrl.note_arrival(t)
            if i % 4 == 0:
                ctrl.note_drop(t)
    ctrl.note_arrival(2 * ctrl.measure_interval + 0.3)
    return ctrl


def test_informed_user_waits_out_the_promise():
    sim = Simulator(seed=1)
    ctrl = make_congested_controller()
    queue = TAQQueue.for_link(1_000_000, rtt=0.1, admission=ctrl)
    bell = Dumbbell(sim, 1_000_000, 0.1, queue=queue)
    # Another pool is already queued ahead of us.
    assert not ctrl.admits(99, 3.0)
    user = WebUser(
        bell, 7, [5_000, 5_000], itertools.count(0),
        connections=2, start_time=3.0, wait_feedback=ctrl,
    )
    sim.run(until=60.0)
    assert user.done
    assert user.waits_observed >= 1
    # The informed user produced no refused SYNs of its own pool: it
    # only connected once admitted (or the gate reopened).
    assert all(f.sender.stats.syn_retries <= 1 for f in user.flows)


def test_open_gate_means_no_wait():
    sim = Simulator(seed=1)
    ctrl = AdmissionController()
    queue = TAQQueue.for_link(1_000_000, rtt=0.1, admission=ctrl)
    bell = Dumbbell(sim, 1_000_000, 0.1, queue=queue)
    user = WebUser(
        bell, 3, [5_000], itertools.count(0),
        connections=1, start_time=0.0, wait_feedback=ctrl,
    )
    sim.run(until=30.0)
    assert user.done
    assert user.waits_observed == 0


def test_uninformed_user_unaffected():
    sim = Simulator(seed=1)
    bell = Dumbbell(sim, 1_000_000, 0.1)
    user = WebUser(bell, 3, [5_000], itertools.count(0), connections=1)
    sim.run(until=30.0)
    assert user.done
    assert user.waits_observed == 0
