"""Tests for the workload generators (bulk, web, short flows, traces)."""

import pytest

from repro.net.topology import Dumbbell
from repro.sim.simulator import Simulator
from repro.workloads import (
    generate_trace,
    replay_trace,
    sample_object_size,
    spawn_bulk_flows,
    spawn_short_flows,
    spawn_web_users,
)


def make_bell(capacity=1_000_000, rtt=0.1, seed=3):
    sim = Simulator(seed=seed)
    return sim, Dumbbell(sim, capacity, rtt)


# ---------------------------------------------------------------- bulk
def test_bulk_flows_created_with_jitter():
    sim, bell = make_bell()
    flows = spawn_bulk_flows(bell, 10, start_window=5.0)
    assert len(flows) == 10
    starts = [f.start_time for f in flows]
    assert min(starts) >= 0.0 and max(starts) < 5.0
    assert len(set(starts)) > 1


def test_bulk_flows_deterministic_per_seed():
    sim_a, bell_a = make_bell(seed=9)
    sim_b, bell_b = make_bell(seed=9)
    a = [f.start_time for f in spawn_bulk_flows(bell_a, 5)]
    b = [f.start_time for f in spawn_bulk_flows(bell_b, 5)]
    assert a == b


def test_bulk_flows_run_and_progress():
    sim, bell = make_bell()
    flows = spawn_bulk_flows(bell, 5, size_segments=20)
    sim.run(until=30.0)
    assert all(f.done for f in flows)


def test_bulk_validation():
    sim, bell = make_bell()
    with pytest.raises(ValueError):
        spawn_bulk_flows(bell, 0)


# ----------------------------------------------------------------- web
def test_web_user_fetches_all_objects():
    sim, bell = make_bell()
    users = spawn_web_users(bell, 2, objects_per_user=3, size_bytes=2_000,
                            connections=2, start_window=1.0)
    sim.run(until=60.0)
    for user in users:
        assert user.done
        assert len(user.samples) == 3
        assert all(s.duration > 0 for s in user.samples)


def test_web_user_pool_limits_concurrency():
    sim, bell = make_bell()
    users = spawn_web_users(bell, 1, objects_per_user=8, size_bytes=50_000,
                            connections=2, start_window=0.0)
    user = users[0]
    sim.run(until=2.0)
    # Never more than `connections` flows in flight.
    active = sum(1 for f in user.flows if not f.done)
    assert active <= 2


def test_web_user_flows_carry_pool_id():
    sim, bell = make_bell()
    users = spawn_web_users(bell, 2, objects_per_user=1, start_window=0.0)
    sim.run(until=30.0)
    for user in users:
        assert all(f.pool_id == user.user_id for f in user.flows)


def test_web_user_delivery_times_merged_sorted():
    sim, bell = make_bell()
    users = spawn_web_users(bell, 1, objects_per_user=2, size_bytes=5_000,
                            connections=2, start_window=0.0)
    sim.run(until=30.0)
    times = users[0].delivery_times()
    assert times == sorted(times)
    assert len(times) > 0


def test_web_unique_flow_ids_across_users():
    sim, bell = make_bell()
    users = spawn_web_users(bell, 3, objects_per_user=2, start_window=0.0)
    sim.run(until=60.0)
    ids = [f.flow_id for u in users for f in u.flows]
    assert len(ids) == len(set(ids))


# --------------------------------------------------------- short flows
def test_short_flows_spacing_and_lengths():
    sim, bell = make_bell()
    flows = spawn_short_flows(bell, [1, 5, 10], start_time=2.0, spacing=1.5)
    assert [f.size_segments for f in flows] == [1, 5, 10]
    assert [f.start_time for f in flows] == [2.0, 3.5, 5.0]


def test_short_flows_validation():
    sim, bell = make_bell()
    with pytest.raises(ValueError):
        spawn_short_flows(bell, [0], start_time=0.0)


# -------------------------------------------------------------- traces
def test_trace_generation_shape():
    trace = generate_trace(seed=1, n_clients=10, duration=100.0)
    assert trace.n_clients == 10
    assert all(0 <= r.time < 100.0 for r in trace.requests)
    times = [r.time for r in trace.requests]
    assert times == sorted(times)
    assert set(r.client_id for r in trace.requests) <= set(range(10))


def test_trace_sizes_heavy_tailed_and_clipped():
    import random

    rng = random.Random(4)
    sizes = [sample_object_size(rng) for _ in range(3000)]
    assert min(sizes) >= 100
    assert max(sizes) <= 2_000_000
    small = sum(1 for s in sizes if s < 100_000)
    assert small / len(sizes) > 0.7  # mass in the web-page range


def test_trace_deterministic():
    a = generate_trace(seed=7, n_clients=5, duration=50.0)
    b = generate_trace(seed=7, n_clients=5, duration=50.0)
    assert a.requests == b.requests


def test_trace_replay_creates_users():
    sim, bell = make_bell()
    trace = generate_trace(seed=2, n_clients=5, duration=30.0,
                           requests_per_client_per_sec=0.2,
                           max_object_bytes=20_000)
    users = replay_trace(bell, trace, max_objects_per_client=2)
    assert 0 < len(users) <= 5
    sim.run(until=120.0)
    fetched = sum(len(u.samples) for u in users)
    assert fetched > 0


def test_trace_validation():
    with pytest.raises(ValueError):
        generate_trace(n_clients=0)
